"""Op-stream tap for differential verification.

The functional oracle (:mod:`repro.verify.oracle`) replays the exact
demand-access sequence the timing simulator executed and re-derives all
*structural* state and counters independently.  Two things in the access
path are genuinely timing-dependent and cannot be re-derived without a
timing model:

* whether a prefetch issue attempt was **dropped** at the DRAM
  outstanding-request limit (``DRAM.can_issue`` depends on in-flight
  completion times) or at a full MSHR file,
* whether a line fetch **coalesced** onto an in-flight MSHR entry
  (``("C", addr)``, appended by ``_fetch_line`` itself when
  ``mshr_entries`` is configured — the coalescing window is the time
  between request issue and data arrival, pure timing), and
* where ``reset_stats`` fell in the interleaved event order.

The tap records exactly that: one ``("D", core, kind, addr)`` entry per
demand access, one ``["P1", core, kind, addr, outcome]`` /
``["P2", core, addr, outcome]`` entry per prefetch issue *attempt*
(outcome is ``"issued"``, ``"dropped"`` or ``"skipped"``), and a
``("RESET",)`` marker.  Prefetch records are appended before the call
runs, so nested records (an L1 prefetch triggering L2 prefetches) appear
in call order, which is exactly the order the oracle re-derives them in.
Everything else — which prefetch addresses are generated, whether they
are skipped as already-resident, every hit/miss/eviction — is predicted
by the oracle from the "D" stream alone; the prefetch records double as
a cross-check on those predictions.

The tap wraps *instance attributes* of a :class:`MemoryHierarchy`
(``access``, ``_issue_l1_prefetch``, ``_issue_l2_prefetch``,
``reset_stats``); ``CMPSystem._run_events`` binds ``hierarchy.access``
at run start, so install the tap before calling ``run()``.  Outcomes
are derived from the per-level ``issued``/``dropped`` counter deltas
around each call; nested calls only ever touch *other* levels' counters,
so the deltas are unambiguous.
"""

from __future__ import annotations

from typing import List

from repro.core.hierarchy import MemoryHierarchy
from repro.workloads.base import IFETCH

DEMAND = "D"
L1_PREFETCH = "P1"
L2_PREFETCH = "P2"
COALESCE = "C"
RESET = "RESET"

ISSUED = "issued"
DROPPED = "dropped"
SKIPPED = "skipped"


class OpTap:
    """Records the hierarchy's op stream; install before ``run()``."""

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        self.ops: List = []
        self._installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "OpTap":
        if self._installed:
            raise RuntimeError("tap already installed")
        h = self.hierarchy
        ops = self.ops
        orig_access = h.access
        orig_p1 = h._issue_l1_prefetch
        orig_p2 = h._issue_l2_prefetch
        orig_reset = h.reset_stats

        def access(core: int, kind: int, addr: int, now: float):
            ops.append((DEMAND, core, kind, addr))
            return orig_access(core, kind, addr, now)

        def issue_l1_prefetch(core: int, kind: int, addr: int, now: float) -> None:
            rec = [L1_PREFETCH, core, kind, addr, SKIPPED]
            ops.append(rec)
            stats = h.pf_stats["l1i" if kind == IFETCH else "l1d"]
            issued0, dropped0 = stats.issued, stats.dropped
            orig_p1(core, kind, addr, now)
            if stats.issued > issued0:
                rec[4] = ISSUED
            elif stats.dropped > dropped0:
                rec[4] = DROPPED

        def issue_l2_prefetch(core: int, addr: int, now: float) -> None:
            rec = [L2_PREFETCH, core, addr, SKIPPED]
            ops.append(rec)
            stats = h.pf_stats["l2"]
            issued0, dropped0 = stats.issued, stats.dropped
            orig_p2(core, addr, now)
            if stats.issued > issued0:
                rec[3] = ISSUED
            elif stats.dropped > dropped0:
                rec[3] = DROPPED

        def reset_stats() -> None:
            ops.append((RESET,))
            orig_reset()

        h.access = access
        h._issue_l1_prefetch = issue_l1_prefetch
        h._issue_l2_prefetch = issue_l2_prefetch
        h.reset_stats = reset_stats
        # Marker for the fast engine (repro.core.fastsim): it bypasses
        # the wrapped methods, so it detects this tap via ``_tap_ops``
        # and appends equivalent records to the same list natively.  An
        # unknown wrapper (no marker) makes it fall back to the
        # reference loop instead.
        h._tap_ops = ops
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        h = self.hierarchy
        for name in (
            "access", "_issue_l1_prefetch", "_issue_l2_prefetch", "reset_stats",
            "_tap_ops",
        ):
            try:
                delattr(h, name)
            except AttributeError:
                pass
        self._installed = False

    def __enter__(self) -> "OpTap":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()
