"""Timing-free functional reference hierarchy (the differential oracle).

:class:`ReferenceHierarchy` is an independent re-implementation of the
memory hierarchy's *structural* semantics — inclusive L1I/L1D/L2 with
true-LRU stacks, the MSI directory, victim tags, the decoupled
variable-segment L2 packing, the ISCA'04 adaptive-compression counter,
link/DRAM traffic accounting and the effective-size sampling — built on
plain address-keyed dicts and lists rather than the simulator's
tag-frame arrays.  It replays the op stream captured by
:class:`repro.verify.tap.OpTap` and predicts every structural counter
the simulator reports; :meth:`compare` then checks them field by field,
along with the complete final machine state (LRU orders, MSI states,
dirty/prefetch bits, sharer vectors, segment accounting, victim tags).

What is *not* predicted, and why:

* ``partial_hits`` vs ``prefetch_hits`` — the split depends on whether
  the demanded line's fill was still in flight (pure timing).  Their
  **sum** is structural; the oracle tracks it in ``prefetch_hits`` and
  the comparison checks the sum.
* prefetch ``issued`` vs ``dropped`` when DRAM- or MSHR-gated — taken
  from the recorded outcome (see :mod:`repro.verify.tap`); every other
  skip/issue decision is re-derived structurally and cross-checked.
* whether a fetch coalesced onto an in-flight MSHR entry — the window
  is pure timing, so the recorded ``("C", addr)`` entries are taken as
  given; the oracle then *checks* the address, replays the structural
  consequences (no DRAM access, no link messages, the in-flight
  fetch's segment count) and predicts ``mshr.allocations`` and
  ``mshr.coalesced`` exactly.
* latencies, histograms, queue/stall cycles, elapsed time — timing
  (including MSHR stalls and MSHR/write-back-buffer occupancy peaks).

Prefetch *address generation* (stride detection, stream tables,
adaptive throttles, sequential degree control) is driven through replica
policy instances of the real prefetcher classes, fed by oracle-derived
hit/miss events.  The oracle therefore predicts which prefetch attempts
happen and with which addresses; the recorded P1/P2 entries are consumed
in order and any disagreement in kind, core, address or outcome is
itself a detected divergence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.params import SystemConfig
from repro.prefetch.adaptive import AdaptiveController
from repro.prefetch.pointer import PointerChasePrefetcher
from repro.prefetch.sequential import SequentialPrefetcher
from repro.prefetch.stream_buffer import StreamBufferPool
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.taxonomy import PrefetchTaxonomy
from repro.stats.counters import CacheStats, PrefetchStats
from repro.verify import tap as _tap
from repro.workloads.base import IFETCH, STORE
from repro.workloads.values import ValueModel

# Local MSI constants: the oracle deliberately avoids importing the
# simulator's cache structures (repro.cache.*) so a bug there cannot
# leak into the reference model.
_INVALID, _SHARED, _MODIFIED = 0, 1, 2
_SEGMENTS_PER_LINE = 8
_SAMPLE_EVERY = 512
_LINE_BYTES = 64
_SEGMENT_BYTES = 8


class OracleMismatch(AssertionError):
    """The simulator and the reference model diverged."""


# ----------------------------------------------------------------------
# tree-PLRU, re-derived independently of repro.cache.plru
# ----------------------------------------------------------------------
#
# Same packed representation as the simulator (node 0 the root, node i's
# children at 2i+1 / 2i+2, one int per set) so final bit state can be
# compared directly, but the walks are derived from the binary digits of
# the way index rather than the simulator's range-halving loop.


def _plru_touch(bits: int, way: int, ways: int) -> int:
    levels = ways.bit_length() - 1
    node = 0
    for depth in range(levels):
        right = (way >> (levels - 1 - depth)) & 1
        if right:
            bits &= ~(1 << node)  # point left, away from the touched way
        else:
            bits |= 1 << node  # point right
        node = 2 * node + 1 + right
    return bits


def _plru_victim(bits: int, ways: int, mask: int) -> int:
    levels = ways.bit_length() - 1
    node = 0
    way = 0
    for depth in range(levels):
        width = 1 << (levels - 1 - depth)  # ways per child subtree
        left_mask = ((1 << width) - 1) << way
        right = (bits >> node) & 1
        if right:
            if not (mask & (left_mask << width)):
                right = 0  # no candidate on the right: divert
        elif not (mask & left_mask):
            right = 1
        node = 2 * node + 1 + right
        if right:
            way += width
    return way


# ----------------------------------------------------------------------
# reference structures
# ----------------------------------------------------------------------


class _Line:
    """One cached line's structural state (address-keyed)."""

    __slots__ = ("state", "dirty", "prefetch_bit", "segments", "sharers", "owner")

    def __init__(
        self,
        state: int = _SHARED,
        dirty: bool = False,
        prefetch_bit: bool = False,
        segments: int = _SEGMENTS_PER_LINE,
        sharers: int = 0,
        owner: int = -1,
    ) -> None:
        self.state = state
        self.dirty = dirty
        self.prefetch_bit = prefetch_bit
        self.segments = segments
        self.sharers = sharers
        self.owner = owner


class _Evicted:
    """What a reference-model insertion or invalidation pushed out."""

    __slots__ = ("addr", "dirty", "prefetch_untouched", "state", "sharers", "owner", "segments")

    def __init__(self, addr: int, line: _Line) -> None:
        self.addr = addr
        self.dirty = line.dirty
        self.prefetch_untouched = line.prefetch_bit
        self.state = line.state
        self.sharers = line.sharers
        self.owner = line.owner
        self.segments = line.segments


class _RefL1:
    """True-LRU set-associative cache with address-list victim tags.

    The simulator reuses tag frames and keeps invalid frames at the
    stack tail; structurally that is equivalent to "evict the LRU line
    exactly when the set already holds ``assoc`` valid lines", which is
    what this model implements directly.
    """

    def __init__(self, n_sets: int, assoc: int, victim_depth: int, plru: bool = False) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        self.victim_depth = victim_depth
        self.plru = plru
        self.sets: List[List[int]] = [[] for _ in range(n_sets)]  # MRU-first addrs
        self.lines: Dict[int, _Line] = {}
        self.victims: List[List[int]] = [[] for _ in range(n_sets)]
        # Tree-PLRU state: per-set packed direction bits plus the
        # physical way each resident address occupies (the simulator's
        # fixed tag frames; only meaningful when ``plru``, since LRU
        # victim choice never depends on physical placement).
        self.bits: List[int] = [0] * n_sets
        self.ways: Dict[int, int] = {}

    def touch(self, addr: int) -> None:
        idx = addr % self.n_sets
        stack = self.sets[idx]
        if stack[0] != addr:
            stack.remove(addr)
            stack.insert(0, addr)
        if self.plru:  # unconditional, even when the line was already MRU
            self.bits[idx] = _plru_touch(self.bits[idx], self.ways[addr], self.assoc)

    def _note_victim(self, addr: int) -> None:
        if self.victim_depth:
            victims = self.victims[addr % self.n_sets]
            if addr in victims:
                victims.remove(addr)
            victims.insert(0, addr)
            del victims[self.victim_depth:]

    def insert(self, addr: int, state: int, dirty: bool, prefetch: bool) -> Optional[_Evicted]:
        if addr in self.lines:
            raise OracleMismatch(f"oracle L1 insert of resident line {addr:#x}")
        idx = addr % self.n_sets
        stack = self.sets[idx]
        evicted = None
        if not self.plru:
            if len(stack) == self.assoc:
                old = stack.pop()
                evicted = _Evicted(old, self.lines.pop(old))
                self._note_victim(old)
        else:
            occupied = 0
            for a in stack:
                occupied |= 1 << self.ways[a]
            free = ((1 << self.assoc) - 1) & ~occupied
            way = _plru_victim(self.bits[idx], self.assoc, free or occupied)
            if not free:
                old = next(a for a in stack if self.ways[a] == way)
                stack.remove(old)
                evicted = _Evicted(old, self.lines.pop(old))
                del self.ways[old]
                self._note_victim(old)
            self.ways[addr] = way
            self.bits[idx] = _plru_touch(self.bits[idx], way, self.assoc)
        stack.insert(0, addr)
        self.lines[addr] = _Line(state, dirty, prefetch)
        return evicted

    def invalidate(self, addr: int) -> Optional[_Evicted]:
        line = self.lines.pop(addr, None)
        if line is None:
            return None
        self.sets[addr % self.n_sets].remove(addr)
        if self.plru:
            del self.ways[addr]  # the frame frees; direction bits keep
        self._note_victim(addr)
        return _Evicted(addr, line)

    def victim_match(self, addr: int) -> bool:
        return addr in self.victims[addr % self.n_sets]

    def set_has_prefetched_line(self, addr: int) -> bool:
        lines = self.lines
        return any(lines[a].prefetch_bit for a in self.sets[addr % self.n_sets])


class _RefL2:
    """Decoupled variable-segment compressed cache (address-keyed).

    Victim tags are modeled as the per-set list of ``(addr, way)`` pairs
    held by the invalid tags, most-recently-retired first; a new line
    claims the *oldest* victim tag (list tail), exactly like the
    simulator's tag-frame pool.  Unused tags start as ``-1``
    placeholders (the simulator's fresh ``TagEntry.addr``) carrying
    their build-order ways ``0..tags_per_set-1``, so the first fill
    claims way ``tags_per_set - 1`` — the same physical placement the
    simulator produces.
    """

    def __init__(
        self,
        n_sets: int,
        tags_per_set: int,
        total_segments: int,
        compressed: bool,
        plru: bool = False,
    ) -> None:
        self.n_sets = n_sets
        self.tags_per_set = tags_per_set
        self.total_segments = total_segments
        self.compressed = compressed
        self.plru = plru
        self.sets: List[List[int]] = [[] for _ in range(n_sets)]  # MRU-first addrs
        self.victims: List[List[Tuple[int, int]]] = [
            [(-1, way) for way in range(tags_per_set)] for _ in range(n_sets)
        ]
        self.used: List[int] = [0] * n_sets
        self.lines: Dict[int, _Line] = {}
        self.bits: List[int] = [0] * n_sets
        self.ways: Dict[int, int] = {}  # resident addr -> physical way

    def touch(self, addr: int) -> None:
        idx = addr % self.n_sets
        stack = self.sets[idx]
        if stack[0] != addr:
            stack.remove(addr)
            stack.insert(0, addr)
        if self.plru:  # unconditional, even when the line was already MRU
            self.bits[idx] = _plru_touch(self.bits[idx], self.ways[addr], self.tags_per_set)

    def stack_depth(self, addr: int) -> int:
        return self.sets[addr % self.n_sets].index(addr)

    def victim_match(self, addr: int) -> bool:
        return any(v[0] == addr for v in self.victims[addr % self.n_sets])

    def set_has_prefetched_line(self, addr: int) -> bool:
        lines = self.lines
        return any(lines[a].prefetch_bit for a in self.sets[addr % self.n_sets])

    def resident_lines(self) -> int:
        return len(self.lines)

    def _retire(self, idx: int, addr: int) -> _Evicted:
        line = self.lines.pop(addr)
        self.used[idx] -= line.segments
        self.victims[idx].insert(0, (addr, self.ways.pop(addr)))
        return _Evicted(addr, line)

    def insert(
        self,
        addr: int,
        segments: int,
        *,
        dirty: bool,
        prefetch: bool,
        sharers: int,
        owner: int,
        state: int,
    ) -> List[_Evicted]:
        if addr in self.lines:
            raise OracleMismatch(f"oracle L2 insert of resident line {addr:#x}")
        if not self.compressed:
            segments = _SEGMENTS_PER_LINE
        idx = addr % self.n_sets
        stack = self.sets[idx]
        victims = self.victims[idx]
        evictions: List[_Evicted] = []
        while self.used[idx] + segments > self.total_segments or not victims:
            if self.plru:
                mask = 0
                for a in stack:
                    mask |= 1 << self.ways[a]
                way = _plru_victim(self.bits[idx], self.tags_per_set, mask)
                old = next(a for a in stack if self.ways[a] == way)
                stack.remove(old)
            else:
                old = stack.pop()
            evictions.append(self._retire(idx, old))
        way = victims.pop()[1]  # claim the oldest victim tag (and its frame)
        self.ways[addr] = way
        stack.insert(0, addr)
        self.used[idx] += segments
        self.lines[addr] = _Line(state, dirty, prefetch, segments, sharers, owner)
        if self.plru:
            self.bits[idx] = _plru_touch(self.bits[idx], way, self.tags_per_set)
        return evictions


class _RefLink:
    """Structural pin-link traffic accounting (bytes/messages/flits only;
    queuing is timing and stays out of the oracle)."""

    def __init__(self, header_bytes: int, compressed: bool) -> None:
        self.header_bytes = header_bytes
        self.compressed = compressed
        self.reset()

    def reset(self) -> None:
        self.messages = 0
        self.data_messages = 0
        self.flits = 0
        self.bytes_total = 0
        self.bytes_data = 0
        self.bytes_header = 0
        self.uncompressed_equiv_bytes = 0

    def send_request(self) -> None:
        nbytes = self.header_bytes
        self.messages += 1
        self.flits += nbytes // self.header_bytes
        self.bytes_total += nbytes
        self.bytes_header += nbytes

    def send_data(self, segments: int) -> None:
        payload = segments * _SEGMENT_BYTES if self.compressed else _LINE_BYTES
        nbytes = self.header_bytes + payload
        self.messages += 1
        self.data_messages += 1
        self.flits += nbytes // self.header_bytes
        self.bytes_total += nbytes
        self.bytes_data += nbytes - self.header_bytes
        self.bytes_header += self.header_bytes
        self.uncompressed_equiv_bytes += self.header_bytes + _LINE_BYTES


class _RefCompressionPolicy:
    """ISCA'04 benefit/cost counter, re-derived from structural events
    (stack depth is pre-touch, so it is fully structural)."""

    def __init__(self, miss_penalty: float, decompression_penalty: float, enabled: bool,
                 saturation: float = 1_000_000.0) -> None:
        self.miss_penalty = miss_penalty
        self.decompression_penalty = decompression_penalty
        self.saturation = saturation
        self.enabled = enabled
        self.counter = 0.0
        self.avoided_miss_events = 0
        self.penalized_hit_events = 0

    def reset_stats(self) -> None:
        self.avoided_miss_events = 0
        self.penalized_hit_events = 0

    def should_compress(self) -> bool:
        return not self.enabled or self.counter >= 0.0

    def on_hit(self, stack_depth: int, uncompressed_assoc: int, compressed: bool) -> None:
        if stack_depth >= uncompressed_assoc:
            self.avoided_miss_events += 1
            delta = self.miss_penalty
        elif compressed:
            self.penalized_hit_events += 1
            delta = -self.decompression_penalty
        else:
            return
        self.counter = max(-self.saturation, min(self.saturation, self.counter + delta))


class _RefCompressionStats:
    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.samples = 0
        self.lines_held_sum = 0
        self.compressed_lines = 0
        self.uncompressed_lines = 0
        self.segment_sum = 0


# ----------------------------------------------------------------------
# the oracle
# ----------------------------------------------------------------------


class ReferenceHierarchy:
    """Replays a tapped op stream and predicts all structural counters."""

    def __init__(self, config: SystemConfig, values: ValueModel) -> None:
        self.config = config
        self.values = values
        n = config.n_cores
        pf_cfg = config.prefetch
        victim_depth = pf_cfg.l1_victim_tags if pf_cfg.adaptive else 0

        self.l1i = [
            _RefL1(config.l1i.n_sets, config.l1i.assoc, victim_depth,
                   plru=config.l1i.replacement == "plru")
            for _ in range(n)
        ]
        self.l1d = [
            _RefL1(config.l1d.n_sets, config.l1d.assoc, victim_depth,
                   plru=config.l1d.replacement == "plru")
            for _ in range(n)
        ]
        self.l2 = _RefL2(
            config.l2.n_sets,
            config.l2.tags_per_set,
            config.l2.data_segments_per_set,
            config.l2.compressed,
            plru=config.l2.replacement == "plru",
        )
        self.link = _RefLink(config.link.header_bytes, config.link.compressed)
        self.policy = _RefCompressionPolicy(
            miss_penalty=float(config.memory.latency_cycles),
            decompression_penalty=float(config.l2.decompression_cycles),
            enabled=config.l2.compressed and config.l2.adaptive_compression,
        )
        self.compression = _RefCompressionStats()
        self.dram_demand = 0
        self.dram_prefetch = 0
        self._l2_access_count = 0

        # Miss-handling realism.  Whether a fetch coalesced onto an
        # in-flight MSHR entry is timing (taken from the recorded "C"
        # entries); the *consequences* — one fewer DRAM access, no link
        # messages, the in-flight fetch's segment count — are structural
        # and re-derived here.  ``_fetch_segments`` remembers each
        # line's most recent real fetch, which is exactly the in-flight
        # record a coalescing miss rides.
        self._mshr_on = config.memory.mshr_entries is not None
        self._wb_on = bool(config.memory.writeback_buffer)
        self.mshr_allocations = 0
        self.mshr_coalesced = 0
        self.wb_inserted = 0
        self._fetch_segments: Dict[int, int] = {}

        # Stats bundles.  ``prefetch_hits`` holds the merged
        # partial+prefetch first-touch count (the split is timing).
        self.l1i_stats = CacheStats()
        self.l1d_stats = CacheStats()
        self.l2_stats = CacheStats()
        self.pf_stats: Dict[str, PrefetchStats] = {
            "l1i": PrefetchStats(),
            "l1d": PrefetchStats(),
            "l2": PrefetchStats(),
        }

        # Replica prefetch policy instances, wired exactly like the
        # hierarchy wires its own (per-L1 adaptive controllers, one
        # shared L2 controller, per-level shared stats bundles).
        self.l2_adaptive = AdaptiveController(pf_cfg.counter_max, enabled=pf_cfg.adaptive)
        if pf_cfg.kind == "stride":
            make_pf = StridePrefetcher
        elif pf_cfg.kind == "sequential":
            make_pf = SequentialPrefetcher
        elif pf_cfg.kind == "pointer":
            oracle_values = self.values

            def make_pf(level, cfg, adaptive=None, stats=None):
                return PointerChasePrefetcher(
                    level, cfg, adaptive=adaptive, stats=stats, values=oracle_values
                )
        else:
            raise ValueError(f"unknown prefetcher kind {pf_cfg.kind!r}")
        self.pf_l1i = [make_pf("l1", pf_cfg, stats=self.pf_stats["l1i"]) for _ in range(n)]
        self.pf_l1d = [make_pf("l1", pf_cfg, stats=self.pf_stats["l1d"]) for _ in range(n)]
        if pf_cfg.shared_l2:
            shared = make_pf("l2", pf_cfg, adaptive=self.l2_adaptive, stats=self.pf_stats["l2"])
            self.pf_l2 = [shared] * n
        else:
            self.pf_l2 = [
                make_pf("l2", pf_cfg, adaptive=self.l2_adaptive, stats=self.pf_stats["l2"])
                for _ in range(n)
            ]
        self.taxonomy = PrefetchTaxonomy()
        self.stream_buffers = (
            [StreamBufferPool(pf_cfg.stream_buffers, pf_cfg.stream_buffer_depth) for _ in range(n)]
            if pf_cfg.placement == "stream_buffer"
            else None
        )

        self._pf_on = pf_cfg.enabled
        self._adaptive = pf_cfg.adaptive and pf_cfg.enabled
        self._uncompressed_assoc = config.l2.uncompressed_assoc
        self._ops: List = []
        self._pos = 0

    # -- replay driver ------------------------------------------------------

    def replay(self, ops: List) -> None:
        self._ops = ops
        self._pos = 0
        while self._pos < len(ops):
            op = ops[self._pos]
            self._pos += 1
            head = op[0]
            if head == _tap.DEMAND:
                self._demand(op[1], op[2], op[3])
            elif head == _tap.RESET:
                self._reset()
            else:
                raise OracleMismatch(
                    f"op {self._pos - 1}: unconsumed record {op!r} — the simulator "
                    "performed a prefetch attempt or coalesced fetch the oracle "
                    "did not predict"
                )

    def _next_prefetch_op(self, expected: List) -> str:
        """Consume the next record, which must match the predicted
        prefetch attempt; returns the recorded outcome."""
        if self._pos >= len(self._ops):
            raise OracleMismatch(
                f"oracle predicted prefetch attempt {expected!r} but the op stream ended"
            )
        op = self._ops[self._pos]
        if list(op[:-1]) != expected:
            raise OracleMismatch(
                f"op {self._pos}: oracle predicted prefetch attempt {expected!r} "
                f"but the simulator recorded {op!r}"
            )
        self._pos += 1
        return op[-1]

    def _check_outcome(self, op_idx: int, recorded: str, predicted: str) -> None:
        if recorded != predicted:
            raise OracleMismatch(
                f"op {op_idx}: prefetch outcome diverged — simulator recorded "
                f"{recorded!r}, oracle predicts {predicted!r}"
            )

    # -- demand path --------------------------------------------------------

    def _demand(self, core: int, kind: int, addr: int) -> None:
        if kind == IFETCH:
            l1, pf, stats, level = self.l1i[core], self.pf_l1i[core], self.l1i_stats, "l1i"
        else:
            l1, pf, stats, level = self.l1d[core], self.pf_l1d[core], self.l1d_stats, "l1d"
        line = l1.lines.get(addr)
        if line is not None:
            if line.prefetch_bit:
                stats.prefetch_hits += 1  # merged partial+prefetch count
                pf.stats.useful += 1
                pf.adaptive.on_useful()
                self.taxonomy.on_used(level)
                line.prefetch_bit = False
            stats.demand_hits += 1
            l1.touch(addr)
            if self._pf_on:
                for p in pf.observe_hit(addr):
                    self._consume_l1_prefetch(core, kind, p)
            if kind == STORE:
                # Re-probe: a prefetch issued above can have evicted the
                # line (L2 eviction back-invalidates the L1 copy).
                line = l1.lines.get(addr)
                if line is not None:
                    if line.state == _SHARED:
                        self._upgrade(core, addr)
                        line.state = _MODIFIED
                        stats.upgrades += 1
                    line.dirty = True
            return

        # L1 miss.
        stats.demand_misses += 1
        if self._adaptive and l1.victim_match(addr) and l1.set_has_prefetched_line(addr):
            pf.stats.harmful += 1
            pf.adaptive.on_harmful()
            self.taxonomy.on_victim_live(level)
        store = kind == STORE
        self._l2_access(core, addr, store=store, demand=True)
        # Mirror the simulator's inclusion guard: skip the L1 fill when a
        # nested L2 prefetch evicted the line from the L2 again.
        if addr in self.l2.lines:
            ev = l1.insert(addr, _MODIFIED if store else _SHARED, dirty=store, prefetch=False)
            if ev is not None:
                self._handle_l1_eviction(core, ev, pf, stats, level)
        if self._pf_on:
            for p in pf.observe_miss(addr):
                self._consume_l1_prefetch(core, kind, p)

    def _handle_l1_eviction(self, core, ev: _Evicted, pf, stats: CacheStats, level: str) -> None:
        stats.evictions += 1
        if ev.prefetch_untouched:
            pf.stats.useless += 1
            pf.adaptive.on_useless()
            self.taxonomy.on_evicted_unused(level)
        l2line = self.l2.lines.get(ev.addr)
        if l2line is not None:
            l2line.sharers &= ~(1 << core)
            if l2line.owner == core:
                l2line.owner = -1
            if ev.dirty:
                l2line.dirty = True
                stats.writebacks += 1
        elif ev.dirty:
            self.link.send_data(self.values.segments_for(ev.addr))
            stats.writebacks += 1
            self.wb_inserted += 1

    def _upgrade(self, core: int, addr: int) -> None:
        l2line = self.l2.lines.get(addr)
        if l2line is None:  # lost to an L2 eviction race
            return
        self._invalidate_other_sharers(l2line, addr, core)
        l2line.sharers = 1 << core
        l2line.owner = core
        l2line.dirty = True

    # -- L2 path ------------------------------------------------------------

    def _l2_access(
        self,
        core: int,
        addr: int,
        *,
        store: bool,
        demand: bool,
        prefetch: bool = False,
        from_l1_prefetch: bool = False,
    ) -> None:
        self._l2_access_count += 1
        if not self._l2_access_count % _SAMPLE_EVERY:
            self.compression.samples += 1
            self.compression.lines_held_sum += self.l2.resident_lines()

        l2 = self.l2
        l2s = self.l2_stats
        line = l2.lines.get(addr)
        pf2 = self.pf_l2[core]

        if line is not None:
            line_compressed = l2.compressed and line.segments < _SEGMENTS_PER_LINE
            if line_compressed:
                l2s.compressed_hits += 1
            if self.policy.enabled:
                self.policy.on_hit(l2.stack_depth(addr), self._uncompressed_assoc, line_compressed)
            first_access = demand or from_l1_prefetch
            if first_access:
                if demand:
                    l2s.demand_hits += 1
                if line.prefetch_bit:
                    l2s.prefetch_hits += 1  # merged partial+prefetch count
                    self.pf_stats["l2"].useful += 1
                    self.l2_adaptive.on_useful()
                    self.taxonomy.on_used("l2")
                line.prefetch_bit = False
            l2.touch(addr)
            if store:
                self._invalidate_other_sharers(line, addr, core)
                line.sharers = 1 << core
                line.owner = core
                line.dirty = True
            elif line.owner not in (-1, core):
                self._downgrade_owner(line, addr)
            if demand or from_l1_prefetch:
                line.sharers |= 1 << core
            if demand and self._pf_on:
                for p in pf2.observe_hit(addr):
                    self._consume_l2_prefetch(core, p)
            return

        # L2 miss.
        if self.stream_buffers is not None and (demand or from_l1_prefetch):
            entry = self.stream_buffers[core].take(addr)
            if entry is not None:
                if demand:
                    l2s.prefetch_hits += 1
                    self.pf_stats["l2"].useful += 1
                    self.l2_adaptive.on_useful()
                    self.taxonomy.on_used("l2")
                self._fill_l2(core, addr, entry.segments, store, demand, False, from_l1_prefetch)
                if demand:
                    for p in self.pf_l2[core].observe_hit(addr):
                        self._consume_l2_prefetch(core, p)
                return
        if demand:
            l2s.demand_misses += 1
            if self._pf_on and l2.victim_match(addr) and l2.set_has_prefetched_line(addr):
                self.taxonomy.on_victim_live("l2")
                if self._adaptive:
                    self.pf_stats["l2"].harmful += 1
                    self.l2_adaptive.on_harmful()
        segments = self._fetch_line(core, demand, addr)
        self._fill_l2(core, addr, segments, store, demand, prefetch, from_l1_prefetch)
        if (demand or from_l1_prefetch) and self._pf_on:
            for p in pf2.observe_miss(addr):
                self._consume_l2_prefetch(core, p)

    def _fetch_line(self, core: int, demand: bool, addr: int) -> int:
        if self._mshr_on and self._pos < len(self._ops):
            op = self._ops[self._pos]
            if op[0] == _tap.COALESCE:
                if op[1] != addr:
                    raise OracleMismatch(
                        f"op {self._pos}: simulator coalesced fetch of "
                        f"{op[1]:#x} where the oracle fetches {addr:#x}"
                    )
                self._pos += 1
                self.mshr_coalesced += 1
                segments = self._fetch_segments.get(addr)
                if segments is None:
                    raise OracleMismatch(
                        f"op {self._pos - 1}: coalesced fetch of {addr:#x} "
                        "but the oracle never saw a real fetch of that line"
                    )
                return segments  # rides the in-flight entry: no traffic
        segments = self.values.segments_for(addr)
        if self.policy.enabled and not self.policy.should_compress():
            segments = _SEGMENTS_PER_LINE
        self.link.send_request()
        if demand:
            self.dram_demand += 1
        else:
            self.dram_prefetch += 1
        self.link.send_data(segments)
        if self._mshr_on:
            self.mshr_allocations += 1
            self._fetch_segments[addr] = segments
        return segments

    def _fill_l2(
        self, core, addr, segments, store, demand, prefetch, from_l1_prefetch
    ) -> None:
        sharers = (1 << core) if (demand or from_l1_prefetch) else 0
        owner = core if store else -1
        state = _MODIFIED if store else _SHARED
        if segments < _SEGMENTS_PER_LINE:
            self.compression.compressed_lines += 1
        else:
            self.compression.uncompressed_lines += 1
        self.compression.segment_sum += segments
        evictions = self.l2.insert(
            addr,
            segments,
            dirty=store,
            prefetch=prefetch and not from_l1_prefetch,
            sharers=sharers,
            owner=owner,
            state=state,
        )
        for ev in evictions:
            self._handle_l2_eviction(ev)

    def _handle_l2_eviction(self, ev: _Evicted) -> None:
        self.l2_stats.evictions += 1
        if ev.prefetch_untouched:
            self.pf_stats["l2"].useless += 1
            self.l2_adaptive.on_useless()
            self.taxonomy.on_evicted_unused("l2")
        dirty = ev.dirty
        sharers = ev.sharers
        core = 0
        while sharers:
            if sharers & 1:
                for l1, pf, stats, level in (
                    (self.l1i[core], self.pf_l1i[core], self.l1i_stats, "l1i"),
                    (self.l1d[core], self.pf_l1d[core], self.l1d_stats, "l1d"),
                ):
                    l1ev = l1.invalidate(ev.addr)
                    if l1ev is not None:
                        stats.coherence_invalidations += 1
                        dirty = dirty or l1ev.dirty
                        if l1ev.prefetch_untouched:
                            pf.stats.useless += 1
                            pf.adaptive.on_useless()
                            self.taxonomy.on_evicted_unused(level)
            sharers >>= 1
            core += 1
        if dirty:
            self.l2_stats.writebacks += 1
            self.link.send_data(self.values.segments_for(ev.addr))
            self.wb_inserted += 1

    # -- coherence helpers --------------------------------------------------

    def _invalidate_other_sharers(self, l2line: _Line, addr: int, core: int) -> None:
        sharers = l2line.sharers & ~(1 << core)
        other = 0
        while sharers:
            if sharers & 1:
                for l1, stats in (
                    (self.l1i[other], self.l1i_stats),
                    (self.l1d[other], self.l1d_stats),
                ):
                    l1ev = l1.invalidate(addr)
                    if l1ev is not None:
                        stats.coherence_invalidations += 1
                        if l1ev.dirty:
                            l2line.dirty = True
                l2line.sharers &= ~(1 << other)
                if l2line.owner == other:
                    l2line.owner = -1
            sharers >>= 1
            other += 1

    def _downgrade_owner(self, l2line: _Line, addr: int) -> None:
        owner = l2line.owner
        for l1 in (self.l1i[owner], self.l1d[owner]):
            line = l1.lines.get(addr)
            if line is not None and line.state == _MODIFIED:
                line.state = _SHARED
                line.dirty = False
                l2line.dirty = True
        l2line.owner = -1

    # -- prefetch issue (consuming the recorded attempts) -------------------

    def _consume_l1_prefetch(self, core: int, kind: int, addr: int) -> None:
        op_idx = self._pos
        outcome = self._next_prefetch_op([_tap.L1_PREFETCH, core, kind, addr])
        if addr < 0:
            self._check_outcome(op_idx, outcome, _tap.SKIPPED)
            return
        if kind == IFETCH:
            l1, pf, stats, level = self.l1i[core], self.pf_l1i[core], self.l1i_stats, "l1i"
        else:
            l1, pf, stats, level = self.l1d[core], self.pf_l1d[core], self.l1d_stats, "l1d"
        if addr in l1.lines:
            self._check_outcome(op_idx, outcome, _tap.SKIPPED)
            return
        if addr not in self.l2.lines:
            # DRAM-gated: issued-vs-dropped is the one timing-dependent
            # decision — take it from the record (but "skipped" here
            # would mean structural divergence).
            if outcome == _tap.DROPPED:
                pf.stats.dropped += 1
                return
            self._check_outcome(op_idx, outcome, _tap.ISSUED)
        else:
            self._check_outcome(op_idx, outcome, _tap.ISSUED)
        pf.stats.issued += 1
        self.taxonomy.on_issued(level)
        self._l2_access(core, addr, store=False, demand=False, prefetch=True, from_l1_prefetch=True)
        # Mirror the simulator's inclusion guard (see _demand).
        if addr in self.l2.lines:
            ev = l1.insert(addr, _SHARED, dirty=False, prefetch=True)
            if ev is not None:
                self._handle_l1_eviction(core, ev, pf, stats, level)

    def _consume_l2_prefetch(self, core: int, addr: int) -> None:
        op_idx = self._pos
        outcome = self._next_prefetch_op([_tap.L2_PREFETCH, core, addr])
        if addr < 0:
            self._check_outcome(op_idx, outcome, _tap.SKIPPED)
            return
        if addr in self.l2.lines:
            self._check_outcome(op_idx, outcome, _tap.SKIPPED)
            return
        if self.stream_buffers is not None and self.stream_buffers[core].contains(addr):
            self._check_outcome(op_idx, outcome, _tap.SKIPPED)
            return
        if outcome == _tap.DROPPED:
            self.pf_stats["l2"].dropped += 1
            return
        self._check_outcome(op_idx, outcome, _tap.ISSUED)
        self.pf_stats["l2"].issued += 1
        self.taxonomy.on_issued("l2")
        if self.stream_buffers is not None:
            segments = self._fetch_line(core, False, addr)
            self.stream_buffers[core].insert(addr, 0.0, segments)
            return
        self._l2_access(core, addr, store=False, demand=False, prefetch=True)

    # -- reset --------------------------------------------------------------

    def _reset(self) -> None:
        self.l1i_stats = CacheStats()
        self.l1d_stats = CacheStats()
        self.l2_stats = CacheStats()
        for key in self.pf_stats:
            self.pf_stats[key] = PrefetchStats()
        for group, key in ((self.pf_l1i, "l1i"), (self.pf_l1d, "l1d"), (self.pf_l2, "l2")):
            for p in group:
                p.stats = self.pf_stats[key]
        self.link.reset()
        self.taxonomy = PrefetchTaxonomy()
        if self.stream_buffers is not None:
            for pool in self.stream_buffers:
                pool.hits = pool.insertions = pool.overflows = 0
        self.compression.reset()
        self.dram_demand = 0
        self.dram_prefetch = 0
        self._l2_access_count = 0
        self.policy.reset_stats()
        # MSHR/WB measurement counters reset; _fetch_segments is machine
        # state (in-flight fetch memory) and survives, like the caches.
        self.mshr_allocations = 0
        self.mshr_coalesced = 0
        self.wb_inserted = 0

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------

    #: CacheStats fields compared one-to-one (the partial/prefetch pair
    #: is compared as a sum instead).
    _CACHE_FIELDS = (
        "demand_hits",
        "demand_misses",
        "compressed_hits",
        "writebacks",
        "evictions",
        "upgrades",
        "coherence_invalidations",
    )
    _PF_FIELDS = (
        "issued", "dropped", "useful", "useless", "harmful", "streams_allocated", "throttled",
    )
    _LINK_FIELDS = (
        "messages", "data_messages", "flits", "bytes_total", "bytes_data",
        "bytes_header", "uncompressed_equiv_bytes",
    )
    _TAXONOMY_FIELDS = ("useful", "useful_polluting", "useless", "harmful", "issued")

    def compare(self, hierarchy) -> List[str]:
        """Field-by-field comparison against a live hierarchy; returns a
        list of human-readable divergences (empty = exact agreement)."""
        problems: List[str] = []

        def diff(path: str, sim, ref) -> None:
            if sim != ref:
                problems.append(f"{path}: simulator {sim!r} != oracle {ref!r}")

        for level, sim_stats, ref_stats in (
            ("l1i", hierarchy.l1i_stats, self.l1i_stats),
            ("l1d", hierarchy.l1d_stats, self.l1d_stats),
            ("l2", hierarchy.l2_stats, self.l2_stats),
        ):
            for f in self._CACHE_FIELDS:
                diff(f"{level}.{f}", getattr(sim_stats, f), getattr(ref_stats, f))
            diff(
                f"{level}.partial_hits+prefetch_hits",
                sim_stats.partial_hits + sim_stats.prefetch_hits,
                ref_stats.prefetch_hits,
            )

        for level in ("l1i", "l1d", "l2"):
            for f in self._PF_FIELDS:
                diff(
                    f"prefetch.{level}.{f}",
                    getattr(hierarchy.pf_stats[level], f),
                    getattr(self.pf_stats[level], f),
                )
            sim_tax = hierarchy.taxonomy.level(level)
            ref_tax = self.taxonomy.level(level)
            for f in self._TAXONOMY_FIELDS:
                diff(f"taxonomy.{level}.{f}", getattr(sim_tax, f), getattr(ref_tax, f))

        for f in self._LINK_FIELDS:
            diff(f"link.{f}", getattr(hierarchy.link.stats, f), getattr(self.link, f))

        diff("dram.demand_requests", hierarchy.dram.demand_requests, self.dram_demand)
        diff("dram.prefetch_requests", hierarchy.dram.prefetch_requests, self.dram_prefetch)

        # Miss-handling realism counters (stalls and occupancy peaks are
        # timing; allocations / coalesced fills / write-back insertions
        # are structural once the recorded "C" entries are taken as
        # given — every coalesce must be matched by one fewer fetch).
        if hierarchy.mshr is not None:
            diff("mshr.allocations", hierarchy.mshr.allocations, self.mshr_allocations)
            diff("mshr.coalesced", hierarchy.mshr.coalesced, self.mshr_coalesced)
        if hierarchy.wb is not None:
            diff("wb.inserted", hierarchy.wb.inserted, self.wb_inserted)

        sim_comp = hierarchy.compression_stats
        diff("compression.samples", sim_comp.samples, self.compression.samples)
        diff("compression.lines_held_sum", sim_comp.lines_held_sum, self.compression.lines_held_sum)
        diff("compression.compressed_lines", sim_comp.compressed_lines, self.compression.compressed_lines)
        diff(
            "compression.uncompressed_lines",
            sim_comp.uncompressed_lines,
            self.compression.uncompressed_lines,
        )
        diff("compression.segment_sum", sim_comp.segment_sum, self.compression.segment_sum)

        diff("l2_adaptive.counter", hierarchy.l2_adaptive.counter, self.l2_adaptive.counter)
        for f in ("useful_events", "useless_events", "harmful_events"):
            diff(f"l2_adaptive.{f}", getattr(hierarchy.l2_adaptive, f), getattr(self.l2_adaptive, f))

        sim_policy = hierarchy.compression_policy
        diff("compression_policy.counter", sim_policy.counter, self.policy.counter)
        diff(
            "compression_policy.avoided_miss_events",
            sim_policy.avoided_miss_events,
            self.policy.avoided_miss_events,
        )
        diff(
            "compression_policy.penalized_hit_events",
            sim_policy.penalized_hit_events,
            self.policy.penalized_hit_events,
        )

        for core in range(self.config.n_cores):
            for side, sim_group, ref_group in (
                ("l1i", hierarchy.pf_l1i, self.pf_l1i),
                ("l1d", hierarchy.pf_l1d, self.pf_l1d),
            ):
                diff(
                    f"adaptive.{side}[{core}].counter",
                    sim_group[core].adaptive.counter,
                    ref_group[core].adaptive.counter,
                )

        if self.stream_buffers is not None:
            for core, (sim_pool, ref_pool) in enumerate(
                zip(hierarchy.stream_buffers, self.stream_buffers)
            ):
                for f in ("hits", "insertions", "overflows"):
                    diff(f"stream_buffer[{core}].{f}", getattr(sim_pool, f), getattr(ref_pool, f))
                diff(
                    f"stream_buffer[{core}].contents",
                    [(a, e.segments) for a, e in sim_pool._entries.items()],
                    [(a, e.segments) for a, e in ref_pool._entries.items()],
                )

        problems.extend(self._compare_state(hierarchy))
        return problems

    def _compare_state(self, hierarchy) -> List[str]:
        """Final machine state: LRU orders, line metadata, victim tags,
        segment accounting."""
        problems: List[str] = []

        def diff(path: str, sim, ref) -> None:
            if sim != ref:
                problems.append(f"{path}: simulator {sim!r} != oracle {ref!r}")

        for core in range(self.config.n_cores):
            for label, sim_cache, ref_cache in (
                ("l1i", hierarchy.l1i[core], self.l1i[core]),
                ("l1d", hierarchy.l1d[core], self.l1d[core]),
            ):
                for idx, stack in enumerate(sim_cache._sets):
                    sim_lines = [
                        (e.addr, e.state, e.dirty, e.prefetch_bit) for e in stack if e.valid
                    ]
                    ref_lines = [
                        (a, ref_cache.lines[a].state, ref_cache.lines[a].dirty,
                         ref_cache.lines[a].prefetch_bit)
                        for a in ref_cache.sets[idx]
                    ]
                    diff(f"state.{label}[{core}].set[{idx}]", sim_lines, ref_lines)
                if ref_cache.victim_depth:
                    for idx, victims in enumerate(sim_cache._victims):
                        diff(
                            f"state.{label}[{core}].victims[{idx}]",
                            victims,
                            ref_cache.victims[idx],
                        )
                if ref_cache.plru:
                    diff(
                        f"state.{label}[{core}].plru_bits",
                        sim_cache._plru,
                        ref_cache.bits,
                    )

        l2 = hierarchy.l2
        for idx, cset in enumerate(l2._sets):
            sim_lines = [
                (e.addr, e.state, e.dirty, e.prefetch_bit, e.segments, e.sharers, e.owner)
                for e in cset.valid_stack
            ]
            ref_lines = []
            for a in self.l2.sets[idx]:
                line = self.l2.lines[a]
                ref_lines.append(
                    (a, line.state, line.dirty, line.prefetch_bit, line.segments,
                     line.sharers, line.owner)
                )
            diff(f"state.l2.set[{idx}]", sim_lines, ref_lines)
            diff(
                f"state.l2.victims[{idx}]",
                [(e.addr, e.way) for e in cset.victim_stack],
                self.l2.victims[idx],
            )
            diff(f"state.l2.used_segments[{idx}]", cset.used_segments, self.l2.used[idx])
        if self.l2.plru:
            diff("state.l2.plru_bits", l2._plru, self.l2.bits)
        return problems


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def verify_system(
    system,
    events_per_core: int,
    warmup_events: Optional[int] = None,
    config_name: Optional[str] = None,
    raise_on_failure: bool = True,
) -> Tuple[object, List[str]]:
    """Run a :class:`CMPSystem` with the op tap installed, replay the
    stream through the reference hierarchy, and compare.

    Returns ``(SimulationResult, problems)``; raises
    :class:`OracleMismatch` on divergence when ``raise_on_failure``.
    """
    tap = _tap.OpTap(system.hierarchy)
    tap.install()
    try:
        result = system.run(events_per_core, warmup_events=warmup_events, config_name=config_name)
    finally:
        tap.uninstall()
    ref = ReferenceHierarchy(system.config, system.values)
    ref.replay(tap.ops)
    problems = ref.compare(system.hierarchy)
    if problems and raise_on_failure:
        shown = "\n  ".join(problems[:40])
        more = f"\n  ... and {len(problems) - 40} more" if len(problems) > 40 else ""
        raise OracleMismatch(
            f"{len(problems)} divergence(s) between simulator and oracle:\n  {shown}{more}"
        )
    return result, problems
