"""Structural invariant checking for the memory hierarchy.

These checks formalise the structural invariants the design relies on;
the integration tests call them after stress runs, and they can be run
against any live :class:`CMPSystem` while debugging a model change.
They are the lightweight single-shot face of the verification subsystem:
the periodic :mod:`repro.obs.audit` sweeps, the differential
:mod:`repro.verify.oracle`, and the :mod:`repro.verify.fuzz` harness all
build on (or subsume) them.

Checked invariants:

* **Inclusion** — every valid L1 line is resident in the L2.
* **Directory soundness** — every L2 sharer bit corresponds to an actual
  L1 copy, and every L1 copy is covered by a sharer bit; an L1 line in
  Modified state is the L2 entry's registered owner.
* **Segment accounting** — per-set used segments equal the sum over live
  lines and never exceed the data-space budget; tag counts add up.
* **Single-writer** — no two L1s hold the same line Modified.
"""

from __future__ import annotations

from typing import List

from repro.cache.line import MSIState
from repro.core.hierarchy import MemoryHierarchy


class InvariantViolation(AssertionError):
    """Raised when a structural invariant fails; message lists all
    violations found so a single run surfaces every problem."""


def check_inclusion(h: MemoryHierarchy) -> List[str]:
    problems = []
    for core in range(h.config.n_cores):
        for label, cache in (("L1I", h.l1i[core]), ("L1D", h.l1d[core])):
            for addr, entry in cache._map.items():
                if entry.valid and h.l2.probe(addr) is None:
                    problems.append(
                        f"inclusion: core {core} {label} holds {addr:#x} absent from L2"
                    )
    return problems


def check_directory(h: MemoryHierarchy) -> List[str]:
    problems = []
    n = h.config.n_cores
    # Sharer bits must be backed by L1 copies and vice versa.
    for addr, l2e in h.l2._map.items():
        if not l2e.valid:
            continue
        for core in range(n):
            has_copy = any(
                (e := cache.probe(addr)) is not None for cache in (h.l1i[core], h.l1d[core])
            )
            has_bit = bool(l2e.sharers >> core & 1)
            if has_copy and not has_bit:
                problems.append(f"directory: {addr:#x} cached by core {core} without sharer bit")
            if has_bit and not has_copy:
                problems.append(f"directory: {addr:#x} sharer bit for core {core} without a copy")
        if l2e.owner != -1 and not (l2e.sharers >> l2e.owner & 1):
            problems.append(f"directory: {addr:#x} owner {l2e.owner} not a sharer")
    return problems


def check_single_writer(h: MemoryHierarchy) -> List[str]:
    problems = []
    writers = {}
    for core in range(h.config.n_cores):
        for cache in (h.l1i[core], h.l1d[core]):
            for addr, entry in cache._map.items():
                if entry.valid and entry.state == MSIState.MODIFIED:
                    if addr in writers and writers[addr] != core:
                        problems.append(
                            f"single-writer: {addr:#x} Modified in cores "
                            f"{writers[addr]} and {core}"
                        )
                    writers[addr] = core
    return problems


def check_segments(h: MemoryHierarchy) -> List[str]:
    problems = []
    l2 = h.l2
    for idx, cset in enumerate(l2._sets):
        used = sum(e.segments for e in cset.valid_stack)
        if used != cset.used_segments:
            problems.append(f"segments: set {idx} tracks {cset.used_segments}, actual {used}")
        if used > l2.total_segments:
            problems.append(f"segments: set {idx} over budget ({used}/{l2.total_segments})")
        tags = len(cset.valid_stack) + len(cset.victim_stack)
        if tags != l2.tags_per_set:
            problems.append(f"segments: set {idx} has {tags} tags, expected {l2.tags_per_set}")
        if len(cset.valid_stack) > l2.tags_per_set:
            problems.append(f"segments: set {idx} exceeds tag count")
    return problems


ALL_CHECKS = (check_inclusion, check_directory, check_single_writer, check_segments)


def validate_hierarchy(h: MemoryHierarchy, *, raise_on_failure: bool = True) -> List[str]:
    """Run every invariant check; return (or raise with) all violations."""
    problems: List[str] = []
    for check in ALL_CHECKS:
        problems.extend(check(h))
    if problems and raise_on_failure:
        raise InvariantViolation("\n".join(problems))
    return problems
