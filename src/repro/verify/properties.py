"""Metamorphic properties of the simulator.

Where the functional oracle (:mod:`repro.verify.oracle`) checks one run
against an independent model, the properties here check *pairs* of runs
against each other: configurations that are different programs but must
be the same machine.  Each check raises :class:`PropertyViolation` with
a counter-level diff when the relation fails.

The relations, and why each must hold:

``compression_noop``
    A compressed L2 whose tag count equals its uncompressed
    associativity and whose decompression penalty is zero can never
    pack more lines than a plain cache (at most ``assoc`` lines fit
    either way, and ``assoc`` lines of <= 8 segments always fit in the
    ``assoc * 8`` data segments), so the two configurations must be
    event-for-event identical.  The *only* permitted difference is the
    ``l2.compressed_hits`` classification counter, which labels hits on
    short lines without changing their latency (the penalty is zero).

``degree_zero``
    A stride prefetcher with both startup degrees at zero allocates
    streams that contain no prefetches, so it must be observationally
    identical to no prefetcher at all — the full result fingerprint,
    prefetch counters included, must match.

``reset_conservation``
    ``reset_stats`` zeroes counters but not machine state, so for every
    additive counter C, measuring after a warmup must equal the
    difference of two measurements without the reset:
    C[warm+measure] - C[warm] == C[measure after reset].  Sampled
    occupancy statistics (``compression.samples``/``lines_held_sum``)
    are excluded: the sample cadence restarts at reset, so the two
    runs sample at different points.  Float accumulators are excluded
    because float addition is not associative.

``bandwidth_monotonicity``
    Raising the pin-link bandwidth (keeping everything else fixed) can
    only shorten queues, so runtime must not increase.  The relation is
    exact while the machine's *decisions* are timing-independent, but
    prefetching closes a feedback loop through time: which prefetches
    are dropped at the DRAM outstanding-request gate depends on when
    they are issued, so a faster link can admit prefetches that pollute
    the cache and lengthen the run slightly (sub-1% in every case
    observed — the same contention effect the paper studies).  The
    default tolerance therefore auto-selects: exact (0) when the
    config has prefetching disabled, 5% when the prefetch feedback
    loop is live.  Pass ``tolerance`` explicitly to tighten or loosen.

``determinism``
    Two fresh systems with the same seed must produce bit-identical
    results, and a result must survive the full-dict JSON round trip
    (the on-disk cache's serialisation) with its fingerprint intact.

``attribution_noop``
    The causal-attribution tracker (:mod:`repro.obs.attribution`) is
    read-only by contract: the same point run with ``attribution=True``
    must fingerprint identically to the plain run (``attr_*`` extras are
    stripped by the fingerprint), and its per-event ledgers must
    reconcile exactly with the stats counters (attributed misses sum to
    ``l2.demand_misses``, eviction causes to the eviction totals).

``snapshot_resume_noop``
    Mid-run snapshots (:mod:`repro.core.snapshot`) must be invisible in
    the results: a phased run that is interrupted at *every* phase
    boundary (``REPRO_DEADLINE=0`` truncates each invocation after one
    phase) and resumed until it completes must fingerprint identically
    to the same phased run executed uninterrupted.  This is the
    crash-safety contract — kill-and-resume is a no-op — exercised at
    its worst case, one kill per boundary.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.core.system import CMPSystem
from repro.params import SystemConfig
from repro.report.export import (
    diff_full_dicts,
    result_fingerprint,
    result_from_dict,
    result_to_full_dict,
)


class PropertyViolation(AssertionError):
    """A metamorphic relation between two runs failed."""


def _render(problems: Sequence[Tuple[str, object, object]], a: str, b: str) -> str:
    lines = [f"  {path}: {a}={va!r} {b}={vb!r}" for path, va, vb in problems[:20]]
    if len(problems) > 20:
        lines.append(f"  ... and {len(problems) - 20} more")
    return "\n".join(lines)


def _simulate(
    config: SystemConfig,
    workload: Optional[str],
    trace,
    seed: int,
    events: int,
    warmup: int,
) -> SimulationResult:
    if trace is not None:
        system = CMPSystem(config, trace=trace)
    else:
        system = CMPSystem(config, workload, seed=seed)
    return system.run(events, warmup_events=warmup, config_name="property")


# ---------------------------------------------------------------------------
# compression disabled == infinite segment budget
# ---------------------------------------------------------------------------

#: The one counter the compression-noop pair may disagree on: hits on
#: lines stored short are *labelled* compressed in the compressed
#: configuration, but with decompression_cycles=0 the label is free.
COMPRESSION_NOOP_IGNORE = ("l2.compressed_hits",)


def check_compression_noop(
    config: SystemConfig,
    workload: Optional[str] = None,
    *,
    trace=None,
    seed: int = 0,
    events: int = 1200,
    warmup: Optional[int] = None,
) -> None:
    """Compressed L2 with tags == assoc and free decompression must
    behave exactly like the uncompressed cache."""
    warmup = events if warmup is None else warmup
    narrow = replace(
        config.l2,
        tags_per_set=config.l2.uncompressed_assoc,
        decompression_cycles=0,
        adaptive_compression=False,
    )
    compressed = replace(config, l2=replace(narrow, compressed=True))
    plain = replace(config, l2=replace(narrow, compressed=False))
    ra = _simulate(compressed, workload, trace, seed, events, warmup)
    rb = _simulate(plain, workload, trace, seed, events, warmup)
    problems = diff_full_dicts(
        result_to_full_dict(ra), result_to_full_dict(rb), ignore=COMPRESSION_NOOP_IGNORE
    )
    if problems:
        raise PropertyViolation(
            "compression_noop: compressed cache with no extra tags diverged "
            f"from the uncompressed cache ({len(problems)} counter(s)):\n"
            + _render(problems, "compressed", "plain")
        )


# ---------------------------------------------------------------------------
# prefetch degree 0 == prefetcher off
# ---------------------------------------------------------------------------


def check_degree_zero(
    config: SystemConfig,
    workload: Optional[str] = None,
    *,
    trace=None,
    seed: int = 0,
    events: int = 1200,
    warmup: Optional[int] = None,
) -> None:
    """A stride prefetcher with zero startup degree must equal no
    prefetcher: identical fingerprints, prefetch counters included."""
    warmup = events if warmup is None else warmup
    degree0 = replace(
        config,
        prefetch=replace(
            config.prefetch, enabled=True, kind="stride", l1_startup=0, l2_startup=0,
            adaptive=False,
        ),
    )
    off = replace(
        config, prefetch=replace(config.prefetch, enabled=False, adaptive=False)
    )
    ra = _simulate(degree0, workload, trace, seed, events, warmup)
    rb = _simulate(off, workload, trace, seed, events, warmup)
    problems = diff_full_dicts(result_to_full_dict(ra), result_to_full_dict(rb))
    if problems:
        raise PropertyViolation(
            "degree_zero: zero-degree stride prefetcher diverged from "
            f"prefetching disabled ({len(problems)} counter(s)):\n"
            + _render(problems, "degree0", "off")
        )


# ---------------------------------------------------------------------------
# stats conservation across reset_stats
# ---------------------------------------------------------------------------

_CACHE_FIELDS = (
    "demand_hits", "demand_misses", "partial_hits", "prefetch_hits",
    "compressed_hits", "writebacks", "evictions", "upgrades",
    "coherence_invalidations",
)
_PF_FIELDS = (
    "issued", "dropped", "useful", "useless", "harmful",
    "streams_allocated", "throttled",
)
_LINK_FIELDS = (
    "bytes_total", "bytes_data", "bytes_header", "messages",
    "data_messages", "flits", "uncompressed_equiv_bytes",
)


def counter_snapshot(system: CMPSystem) -> Dict[str, int]:
    """Every additive integer counter of a live system, flattened.

    Covers cache/prefetch/link/DRAM/stream-buffer/compression-policy
    counters, latency-histogram bucket counts and per-core retirement
    counts.  Excluded by construction: float accumulators
    (``queue_cycles``, histogram ``total``, stall cycles), clocks, the
    adaptive controllers' persistent state, and the occupancy-sampling
    fields whose cadence restarts at ``reset_stats``.
    """
    h = system.hierarchy
    snap: Dict[str, int] = {}
    for name, stats in (("l1i", h.l1i_stats), ("l1d", h.l1d_stats), ("l2", h.l2_stats)):
        for field in _CACHE_FIELDS:
            snap[f"{name}.{field}"] = getattr(stats, field)
    for key, stats in h.pf_stats.items():
        for field in _PF_FIELDS:
            snap[f"prefetch.{key}.{field}"] = getattr(stats, field)
    for field in _LINK_FIELDS:
        snap[f"link.{field}"] = getattr(h.link.stats, field)
    snap["dram.demand_requests"] = h.dram.demand_requests
    snap["dram.prefetch_requests"] = h.dram.prefetch_requests
    snap["dram.stalled_issues"] = h.dram.stalled_issues
    comp = h.compression_stats
    snap["compression.compressed_lines"] = comp.compressed_lines
    snap["compression.uncompressed_lines"] = comp.uncompressed_lines
    snap["compression.segment_sum"] = comp.segment_sum
    policy = h.compression_policy
    snap["policy.avoided_miss_events"] = policy.avoided_miss_events
    snap["policy.penalized_hit_events"] = policy.penalized_hit_events
    if h.stream_buffers is not None:
        for i, pool in enumerate(h.stream_buffers):
            snap[f"sb.{i}.hits"] = pool.hits
            snap[f"sb.{i}.insertions"] = pool.insertions
            snap[f"sb.{i}.overflows"] = pool.overflows
    for name, hist in h.latency_hist.items():
        snap[f"latency.{name}.count"] = hist.count
        for bucket, count in enumerate(hist._buckets):
            if count:
                snap[f"latency.{name}.bucket{bucket}"] = count
    for core in system.cores:
        snap[f"core.{core.core_id}.instructions"] = core.stats.instructions
        snap[f"core.{core.core_id}.data_accesses"] = core.stats.data_accesses
        snap[f"core.{core.core_id}.ifetch_accesses"] = core.stats.ifetch_accesses
    return snap


def check_reset_conservation(
    config: SystemConfig,
    workload: Optional[str] = None,
    *,
    trace=None,
    seed: int = 0,
    warmup: int = 900,
    events: int = 1100,
) -> None:
    """C[measure] == C[warm+measure] - C[warm] for every additive counter.

    Runs the same machine twice — once straight through, once with a
    ``reset_stats`` between the phases — and checks that the reset
    removed exactly the warmup contribution from every counter.
    """

    def build() -> CMPSystem:
        if trace is not None:
            return CMPSystem(config, trace=trace)
        return CMPSystem(config, workload, seed=seed)

    straight = build()
    straight._run_events(warmup)
    after_warm = counter_snapshot(straight)
    straight._run_events(events)
    after_both = counter_snapshot(straight)

    with_reset = build()
    with_reset._run_events(warmup)
    with_reset.reset_stats()
    with_reset._run_events(events)
    measured = counter_snapshot(with_reset)

    keys = set(after_both) | set(measured)
    problems = [
        (key, measured.get(key, 0), after_both.get(key, 0) - after_warm.get(key, 0))
        for key in sorted(keys)
        if measured.get(key, 0) != after_both.get(key, 0) - after_warm.get(key, 0)
    ]
    if problems:
        raise PropertyViolation(
            "reset_conservation: counters not conserved across reset_stats "
            f"({len(problems)} counter(s)):\n"
            + _render(problems, "measured", "difference")
        )


# ---------------------------------------------------------------------------
# more bandwidth never hurts
# ---------------------------------------------------------------------------


def check_bandwidth_monotonicity(
    config: SystemConfig,
    workload: Optional[str] = None,
    *,
    trace=None,
    seed: int = 0,
    events: int = 1200,
    warmup: Optional[int] = None,
    factors: Sequence[float] = (1.0, 2.0),
    include_infinite: bool = True,
    tolerance: Optional[float] = None,
) -> None:
    """Elapsed cycles must be non-increasing as link bandwidth grows.

    ``factors`` multiply the configured bandwidth; ``include_infinite``
    appends the no-link-limit machine as the fastest point.
    ``tolerance`` is relative; None auto-selects exact (0.0) for
    prefetch-off configs and 0.05 when prefetching is enabled, whose
    drop-gate timing feedback makes the relation approximate (see the
    module docstring).
    """
    warmup = events if warmup is None else warmup
    if tolerance is None:
        tolerance = 0.05 if config.prefetch.enabled else 0.0
    base_bw = config.link.bandwidth_gbs
    if base_bw is None:
        raise ValueError("config already has infinite bandwidth; nothing to scale")
    bandwidths: List[Optional[float]] = [base_bw * f for f in factors]
    if include_infinite:
        bandwidths.append(None)
    elapsed: List[Tuple[Optional[float], float]] = []
    for bw in bandwidths:
        cfg = replace(config, link=replace(config.link, bandwidth_gbs=bw))
        result = _simulate(cfg, workload, trace, seed, events, warmup)
        elapsed.append((bw, result.elapsed_cycles))
    problems = []
    for (bw_a, cyc_a), (bw_b, cyc_b) in zip(elapsed, elapsed[1:]):
        if cyc_b > cyc_a * (1.0 + tolerance):
            problems.append((f"{bw_a}->{bw_b} GB/s", cyc_a, cyc_b))
    if problems:
        raise PropertyViolation(
            "bandwidth_monotonicity: raising link bandwidth increased runtime:\n"
            + _render(problems, "slower_link_cycles", "faster_link_cycles")
        )


# ---------------------------------------------------------------------------
# determinism and serialisation round trip
# ---------------------------------------------------------------------------


def check_determinism(
    config: SystemConfig,
    workload: Optional[str] = None,
    *,
    trace=None,
    seed: int = 0,
    events: int = 1200,
    warmup: Optional[int] = None,
) -> None:
    """Same seed, same machine: two fresh runs must fingerprint
    identically, and the full-dict JSON round trip (the disk cache's
    wire format) must preserve the fingerprint bit-exactly."""
    warmup = events if warmup is None else warmup
    ra = _simulate(config, workload, trace, seed, events, warmup)
    rb = _simulate(config, workload, trace, seed, events, warmup)
    fa, fb = result_fingerprint(ra), result_fingerprint(rb)
    if fa != fb:
        problems = diff_full_dicts(result_to_full_dict(ra), result_to_full_dict(rb))
        raise PropertyViolation(
            f"determinism: two identical runs diverged ({len(problems)} counter(s)):\n"
            + _render(problems, "first", "second")
        )
    wire = json.dumps(result_to_full_dict(ra), sort_keys=True)
    restored = result_from_dict(json.loads(wire))
    if result_fingerprint(restored) != fa:
        problems = diff_full_dicts(result_to_full_dict(ra), result_to_full_dict(restored))
        raise PropertyViolation(
            "determinism: JSON round trip changed the result "
            f"({len(problems)} counter(s)):\n" + _render(problems, "live", "restored")
        )


# ---------------------------------------------------------------------------
# attribution is read-only and reconciles exactly
# ---------------------------------------------------------------------------


def check_attribution_noop(
    config: SystemConfig,
    workload: Optional[str] = None,
    *,
    trace=None,
    seed: int = 0,
    events: int = 1200,
    warmup: Optional[int] = None,
) -> None:
    """Attribution on must fingerprint identically to attribution off,
    and the tracker's ledgers must reconcile exactly with the stats."""
    import os

    warmup = events if warmup is None else warmup
    off = replace(config, attribution=False)
    on = replace(config, attribution=True)
    # An ambient REPRO_ATTRIBUTION would override both sides of the
    # pair (turning A/B into A/A); suspend it for the comparison.
    saved = os.environ.pop("REPRO_ATTRIBUTION", None)
    try:
        r_off = _simulate(off, workload, trace, seed, events, warmup)
        if trace is not None:
            system = CMPSystem(on, trace=trace)
        else:
            system = CMPSystem(on, workload, seed=seed)
        r_on = system.run(events, warmup_events=warmup, config_name="property")
    finally:
        if saved is not None:
            os.environ["REPRO_ATTRIBUTION"] = saved
    f_off, f_on = result_fingerprint(r_off), result_fingerprint(r_on)
    if f_off != f_on:
        ignore = tuple(
            f"extra.{k}" for k in result_to_full_dict(r_on)["extra"]
            if k.startswith("attr_")
        )
        problems = diff_full_dicts(
            result_to_full_dict(r_off), result_to_full_dict(r_on), ignore=ignore
        )
        raise PropertyViolation(
            "attribution_noop: enabling attribution changed the result "
            f"({len(problems)} counter(s)):\n" + _render(problems, "off", "on")
        )
    tracker = system.hierarchy.attribution
    if tracker is None:
        raise PropertyViolation(
            "attribution_noop: attribution=True did not attach a tracker"
        )
    problems = tracker.reconcile_result(r_on)
    if problems:
        raise PropertyViolation(
            "attribution_noop: ledgers do not reconcile with the stats "
            "counters:\n" + "\n".join(f"  {p}" for p in problems)
        )


# ---------------------------------------------------------------------------
# kill-and-resume is a no-op
# ---------------------------------------------------------------------------


def check_snapshot_resume_noop(
    config: SystemConfig,
    workload: Optional[str] = None,
    *,
    trace=None,
    seed: int = 0,
    events: int = 1200,
    warmup: Optional[int] = None,
    interval: Optional[int] = None,
) -> None:
    """A phased run interrupted at every boundary and resumed must equal
    the uninterrupted phased run bit-exactly."""
    import math
    import os
    import tempfile

    from repro.core import snapshot as _snapshot

    warmup = events if warmup is None else warmup
    interval = interval if interval is not None else max(events // 3, 1)
    knobs = (
        _snapshot.ENV_INTERVAL, _snapshot.ENV_DIR, _snapshot.ENV_RESUME,
        _snapshot.ENV_DEADLINE, _snapshot.ENV_MEM_LIMIT,
    )
    saved = {k: os.environ.pop(k, None) for k in knobs}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-snap-prop-") as tmp:
            os.environ[_snapshot.ENV_DIR] = tmp
            os.environ[_snapshot.ENV_INTERVAL] = str(interval)
            ra = _simulate(config, workload, trace, seed, events, warmup)
            if ra.extra.get("truncated"):
                raise PropertyViolation(
                    "snapshot_resume_noop: the uninterrupted phased run was "
                    "itself truncated (ambient resource guard?)"
                )
            # Interrupted leg: a zero deadline truncates every invocation
            # at its first phase boundary, so each pass advances exactly
            # one phase before "dying"; auto-resume stitches them back
            # together until the run completes.
            os.environ[_snapshot.ENV_DEADLINE] = "0"
            phases = math.ceil(warmup / interval) + math.ceil(events / interval)
            rb = None
            for _ in range(phases + 2):
                rb = _simulate(config, workload, trace, seed, events, warmup)
                if not rb.extra.get("truncated"):
                    break
            else:
                raise PropertyViolation(
                    "snapshot_resume_noop: run never completed after "
                    f"{phases + 2} resume passes of interval {interval}"
                )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    fa, fb = result_fingerprint(ra), result_fingerprint(rb)
    if fa != fb:
        problems = diff_full_dicts(result_to_full_dict(ra), result_to_full_dict(rb))
        raise PropertyViolation(
            "snapshot_resume_noop: kill-and-resume diverged from the "
            f"uninterrupted run ({len(problems)} counter(s)):\n"
            + _render(problems, "uninterrupted", "resumed")
        )


#: Name -> check, for the CLI and the fuzz harness.  Each check accepts
#: (config, workload, *, trace=..., seed=..., events=..., warmup=...).
ALL_PROPERTIES = {
    "compression_noop": check_compression_noop,
    "degree_zero": check_degree_zero,
    "reset_conservation": check_reset_conservation,
    "bandwidth_monotonicity": check_bandwidth_monotonicity,
    "determinism": check_determinism,
    "attribution_noop": check_attribution_noop,
    "snapshot_resume_noop": check_snapshot_resume_noop,
}
