"""Seeded trace-and-config fuzzing for the verification subsystem.

Each fuzz case draws a random (but always *legal*) :class:`SystemConfig`
and a random trace from a small workload grammar — strided walks,
pointer chases, producer/consumer sharing over a common region, hot-set
churn and instruction fetch — then drives the full verification stack
over it:

1. a simulation with invariant auditing forced on
   (:mod:`repro.obs.audit` sweeps inclusion / directory / segment /
   conservation invariants during the run),
2. the functional oracle (:mod:`repro.verify.oracle`) replaying the
   recorded op stream and comparing every structural counter and the
   final cache state,
3. the full-dict JSON round trip (the disk cache's wire format), and
4. one metamorphic property (:mod:`repro.verify.properties`), rotating
   through the applicable ones by seed.

Failures are shrunk (fewer events, fewer cores, features switched off —
whatever still reproduces) and persisted as JSON repro files in the
crash corpus, replayable with :func:`reproduce` or
``repro fuzz --repro <file>``.

Environment knobs:

* ``REPRO_FUZZ_SEED`` — base seed the per-case seeds are derived from
  (default 0; the CLI's ``--seed`` overrides)
* ``REPRO_FUZZ_DIR``  — crash-corpus directory (default ``.repro_fuzz/``)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.system import CMPSystem
from repro.obs.audit import AuditViolation
from repro.params import LINE_BYTES, SystemConfig, asdict, config_from_dict
from repro.params import CacheConfig, L2Config, LinkConfig, MemoryConfig, PrefetchConfig
from repro.report.export import result_fingerprint, result_from_dict, result_to_full_dict
from repro.trace.format import TraceHeader
from repro.trace.io import TracePack
from repro.verify.oracle import OracleMismatch, verify_system
from repro.verify.properties import (
    PropertyViolation,
    check_attribution_noop,
    check_bandwidth_monotonicity,
    check_compression_noop,
    check_degree_zero,
    check_determinism,
    check_reset_conservation,
)
from repro.workloads.base import IFETCH, LOAD, STORE
from repro.workloads.linked import HEAP_BASE
from repro.workloads.registry import all_names, get_spec

DEFAULT_CORPUS = ".repro_fuzz"


def base_seed() -> int:
    return int(os.environ.get("REPRO_FUZZ_SEED", "0") or "0")


def corpus_dir() -> Path:
    return Path(os.environ.get("REPRO_FUZZ_DIR", "") or DEFAULT_CORPUS)


# ---------------------------------------------------------------------------
# random configurations (always satisfying the dataclass validators)
# ---------------------------------------------------------------------------


def random_config(rng) -> SystemConfig:
    """Draw a legal, deliberately small :class:`SystemConfig`.

    Geometries are built from set/assoc counts (so divisibility
    constraints hold by construction) and kept tiny: fuzzing wants many
    evictions, invalidations and segment-budget decisions per event,
    which big caches would spread thin.
    """
    n_cores = rng.choice((1, 2, 2, 4))

    def l1() -> CacheConfig:
        assoc = rng.choice((1, 2, 4))  # powers of two, so PLRU is always legal
        sets = rng.choice((4, 8, 16))
        return CacheConfig(
            size_bytes=sets * assoc * LINE_BYTES,
            assoc=assoc,
            replacement=rng.choice(("lru", "lru", "plru")),
        )

    l2_assoc = rng.choice((2, 4))
    tags = l2_assoc * rng.choice((1, 2))
    n_banks = rng.choice((1, 2, 4))
    sets_per_bank = rng.choice((4, 8, 16))
    l2 = L2Config(
        size_bytes=n_banks * sets_per_bank * l2_assoc * LINE_BYTES,
        n_banks=n_banks,
        tags_per_set=tags,
        uncompressed_assoc=l2_assoc,
        decompression_cycles=rng.choice((0, 5)),
        compressed=rng.random() < 0.5,
        adaptive_compression=rng.random() < 0.25,
        scheme=rng.choice(("fpc", "fpc", "bdi", "fvc", "selective", "zero_only")),
        replacement=rng.choice(("lru", "lru", "plru")),  # tags_per_set is 2/4/8
    )
    prefetch = PrefetchConfig(
        enabled=rng.random() < 0.7,
        adaptive=rng.random() < 0.4,
        kind=rng.choice(("stride", "stride", "sequential", "pointer")),
        shared_l2=rng.random() < 0.25,
        placement=rng.choice(("cache", "cache", "stream_buffer")),
        stream_buffers=rng.choice((2, 4)),
        stream_buffer_depth=rng.choice((2, 4)),
        confirm_misses=rng.choice((3, 4, 5)),
        stream_entries=rng.choice((4, 8)),
        l1_startup=rng.choice((0, 2, 6)),
        l2_startup=rng.choice((0, 4, 25)),
        l1_victim_tags=rng.choice((2, 4)),
    )
    link = LinkConfig(
        bandwidth_gbs=rng.choice((2.0, 10.0, 20.0, None)),
        compressed=rng.random() < 0.5,
    )
    memory = MemoryConfig(
        latency_cycles=rng.choice((100, 400)),
        max_outstanding_per_core=rng.choice((2, 4, 16)),
        row_buffer=rng.random() < 0.3,
        dram_banks=rng.choice((4, 16)),
        row_lines=32,
        row_hit_latency=60,
        # Tiny MSHR files / write-back buffers against tiny caches: lots
        # of full-file stalls, drops and coalescing windows per event.
        mshr_entries=rng.choice((None, None, 1, 2, 4)),
        writeback_buffer=rng.choice((0, 0, 1, 2)),
    )
    return SystemConfig(
        n_cores=n_cores,
        onchip_bandwidth_gbs=rng.choice((None, None, None, 320.0)),
        l1i=l1(),
        l1d=l1(),
        l2=l2,
        link=link,
        memory=memory,
        prefetch=prefetch,
        # Exercise the causal-attribution tracker (read-only by contract;
        # check_attribution_noop asserts the fingerprint identity).
        attribution=rng.random() < 0.25,
    )


# ---------------------------------------------------------------------------
# random traces from a workload grammar
# ---------------------------------------------------------------------------

# Disjoint line-address regions, mirroring the live generators' layout
# (shared region common to all cores, private regions spaced by a prime).
_SHARED_BASE = (2 << 40) + 15485863
_PRIVATE_BASE = 3 << 40
_PRIVATE_STRIDE = (1 << 36) + 32452843
_CODE_BASE = (1 << 40) + 104729


def _core_events(
    rng, core: int, n_cores: int, count: int, shared: List[int], heap_lines: int = 0
) -> List[Tuple[int, int, int]]:
    """One core's event list: a random mixture of the grammar's moves."""
    private = _PRIVATE_BASE + core * _PRIVATE_STRIDE
    # pointer chase: a random permutation cycle over a small block set
    chase_n = rng.choice((32, 64, 128))
    chase = list(range(chase_n))
    rng.shuffle(chase)
    chase_pos = 0
    hot = [private + 4096 + rng.randrange(64) for _ in range(rng.choice((8, 16, 32)))]
    stride = rng.choice((1, 1, 2, 3, 4, -1, -2, 8))
    stride_pos = rng.randrange(512)
    stride_left = 0
    code_pos = 0
    code_lines = rng.choice((4, 64, 256))
    store_frac = rng.uniform(0.05, 0.4)
    # stride, chase, shared, hot, [heap walk,] ifetch
    weights = [rng.random() + 0.05 for _ in range(6 if heap_lines else 5)]
    total = sum(weights)
    cum = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cum.append(acc)

    events: List[Tuple[int, int, int]] = []
    for _ in range(count):
        gap = rng.randint(1, 40)
        u = rng.random()
        if u < cum[0]:  # strided stream
            if stride_left <= 0:
                stride = rng.choice((1, 1, 2, 3, 4, -1, -2, 8))
                stride_pos = rng.randrange(1 << 12)
                stride_left = rng.randint(8, 64)
            stride_pos += stride
            stride_left -= 1
            addr = private + (stride_pos & 0xFFFF)
            kind = STORE if rng.random() < store_frac else LOAD
        elif u < cum[1]:  # pointer chase
            chase_pos = chase[chase_pos]
            addr = private + (1 << 20) + chase_pos
            kind = LOAD
        elif u < cum[2]:  # producer/consumer sharing
            addr = rng.choice(shared)
            producer = addr % n_cores == core
            kind = STORE if producer and rng.random() < 0.6 else LOAD
        elif u < cum[3]:  # hot-set churn
            if rng.random() < 0.02:
                hot[rng.randrange(len(hot))] = private + 4096 + rng.randrange(64)
            addr = rng.choice(hot)
            kind = STORE if rng.random() < store_frac else LOAD
        elif heap_lines and u < cum[4]:  # heap walk (linked-data workloads)
            # Arbitrary lines in the heap region: exercises the value-model
            # overlay and gives pointer-chase prefetchers real lines to scan.
            addr = HEAP_BASE + rng.randrange(heap_lines)
            kind = STORE if rng.random() < store_frac * 0.5 else LOAD
        else:  # instruction fetch
            code_pos = (code_pos + 1) % code_lines if rng.random() < 0.9 else rng.randrange(code_lines)
            addr = _CODE_BASE + core * 1024 + code_pos
            kind = IFETCH
        events.append((gap, kind, addr))
    return events


def random_trace(rng, workload: str, n_cores: int, events_per_core: int) -> TracePack:
    """A grammar-generated trace, tagged with a registered workload name
    (the name selects the value model that sizes compressed lines)."""
    shared = [_SHARED_BASE + i for i in range(rng.choice((16, 64, 128)))]
    spec = get_spec(workload)
    heap_lines = spec.heap_nodes * spec.heap_node_lines if spec.pointer_fraction > 0 else 0
    cores = [
        _core_events(rng, core, n_cores, events_per_core, shared, heap_lines)
        for core in range(n_cores)
    ]
    header = TraceHeader(
        workload=workload,
        n_cores=n_cores,
        events_per_core=events_per_core,
        seed=rng.randrange(1 << 31),
    )
    return TracePack(header, cores)


# ---------------------------------------------------------------------------
# one fuzz case
# ---------------------------------------------------------------------------


@dataclass
class FuzzFailure:
    """A persisted, replayable fuzz failure."""

    seed: int
    stage: str
    error: str
    config: Dict
    trace_events: List[List[Tuple[int, int, int]]]
    workload: str
    events_per_core: int
    shrunk: bool = False
    path: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "stage": self.stage,
                "error": self.error,
                "config": self.config,
                "workload": self.workload,
                "events_per_core": self.events_per_core,
                "trace_events": self.trace_events,
                "shrunk": self.shrunk,
            },
            indent=1,
        )


class _ForcedAudit:
    """Make ``config.audit`` authoritative: an ambient ``REPRO_AUDIT=0``
    must not silently disable the fuzz run's auditing."""

    def __enter__(self):
        self._saved = os.environ.pop("REPRO_AUDIT", None)
        return self

    def __exit__(self, *exc):
        if self._saved is not None:
            os.environ["REPRO_AUDIT"] = self._saved


def _pack(config: SystemConfig, workload: str, events) -> TracePack:
    header = TraceHeader(
        workload=workload,
        n_cores=config.n_cores,
        events_per_core=len(events[0]),
        seed=0,
    )
    return TracePack(header, events)


def _check_case(
    config: SystemConfig, trace: TracePack, *, property_index: Optional[int]
) -> None:
    """Run the whole verification stack on one case; raise on failure."""
    events = trace.events_per_core
    warmup = events // 2
    with _ForcedAudit():
        audited = replace(config, audit=True, audit_interval=max(events // 4, 64))
        system = CMPSystem(audited, trace=trace)
        result, _ = verify_system(
            system, events, warmup_events=warmup, config_name="fuzz"
        )
    wire = json.dumps(result_to_full_dict(result), sort_keys=True)
    if result_fingerprint(result_from_dict(json.loads(wire))) != result_fingerprint(result):
        raise PropertyViolation("fuzz: JSON round trip changed the result")
    if property_index is None:
        return
    checks: List[Callable] = [
        check_determinism,
        check_reset_conservation,
        check_compression_noop,
        check_degree_zero,
        check_attribution_noop,
    ]
    if config.link.bandwidth_gbs is not None:
        checks.append(check_bandwidth_monotonicity)
    check = checks[property_index % len(checks)]
    kwargs = dict(trace=trace)
    if check is check_reset_conservation:
        kwargs.update(warmup=warmup, events=events)
    else:
        kwargs.update(events=events, warmup=warmup)
    check(config, **kwargs)


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def _simplifications(config: SystemConfig) -> List[Tuple[str, SystemConfig]]:
    """Candidate feature removals, most-drastic first."""
    out = []
    if config.n_cores > 1:
        out.append(("halve cores", replace(config, n_cores=config.n_cores // 2)))
    if config.memory.row_buffer:
        out.append(("row_buffer off", replace(config, memory=replace(config.memory, row_buffer=False))))
    if config.memory.mshr_entries is not None:
        out.append(("mshr off", replace(config, memory=replace(config.memory, mshr_entries=None))))
    if config.memory.writeback_buffer:
        out.append(("wb buffer off", replace(config, memory=replace(config.memory, writeback_buffer=0))))
    if "plru" in (config.l1i.replacement, config.l1d.replacement, config.l2.replacement):
        out.append(("lru replacement", replace(
            config,
            l1i=replace(config.l1i, replacement="lru"),
            l1d=replace(config.l1d, replacement="lru"),
            l2=replace(config.l2, replacement="lru"),
        )))
    if config.onchip_bandwidth_gbs is not None:
        out.append(("noc off", replace(config, onchip_bandwidth_gbs=None)))
    if config.link.compressed:
        out.append(("link compression off", replace(config, link=replace(config.link, compressed=False))))
    if config.prefetch.enabled:
        out.append(("prefetch off", replace(config, prefetch=replace(config.prefetch, enabled=False))))
    if config.prefetch.kind == "pointer":
        out.append(("stride prefetcher", replace(config, prefetch=replace(config.prefetch, kind="stride"))))
    if config.l2.scheme == "bdi":
        out.append(("fpc scheme", replace(config, l2=replace(config.l2, scheme="fpc"))))
    if config.prefetch.adaptive:
        out.append(("adaptive pf off", replace(config, prefetch=replace(config.prefetch, adaptive=False))))
    if config.prefetch.placement != "cache":
        out.append(("cache placement", replace(config, prefetch=replace(config.prefetch, placement="cache"))))
    if config.l2.adaptive_compression:
        out.append(("adaptive compression off", replace(config, l2=replace(config.l2, adaptive_compression=False))))
    if config.l2.compressed:
        out.append(("cache compression off", replace(config, l2=replace(config.l2, compressed=False))))
    if config.attribution:
        out.append(("attribution off", replace(config, attribution=False)))
    return out


def shrink_case(
    config: SystemConfig,
    trace: TracePack,
    *,
    property_index: Optional[int],
    max_attempts: int = 40,
) -> Tuple[SystemConfig, TracePack]:
    """Greedily minimise a failing case while it keeps failing."""

    def still_fails(cfg: SystemConfig, pack: TracePack) -> bool:
        try:
            _check_case(cfg, pack, property_index=property_index)
        except Exception:
            return True
        return False

    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        # fewer events
        if trace.events_per_core >= 64:
            half = trace.events_per_core // 2
            shorter = _pack(config, trace.workload, [ev[:half] for ev in trace.per_core_events])
            attempts += 1
            if still_fails(config, shorter):
                trace = shorter
                improved = True
                continue
        # simpler configuration (fewer cores also truncates the trace)
        for _label, candidate in _simplifications(config):
            pack = trace
            if candidate.n_cores != config.n_cores:
                pack = _pack(candidate, trace.workload, trace.per_core_events[: candidate.n_cores])
            attempts += 1
            if still_fails(candidate, pack):
                config, trace = candidate, pack
                improved = True
                break
            if attempts >= max_attempts:
                break
    return config, trace


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------


def fuzz_one(
    seed: int,
    *,
    events_per_core: int = 600,
    check_properties: bool = True,
    shrink: bool = True,
) -> Optional[FuzzFailure]:
    """Run one fuzz case; return a (shrunk) failure report or None."""
    import random as _random

    rng = _random.Random(0x5EED ^ seed)
    config = random_config(rng)
    workload = rng.choice(all_names())
    trace = random_trace(rng, workload, config.n_cores, events_per_core)
    property_index = seed if check_properties else None
    try:
        _check_case(config, trace, property_index=property_index)
        return None
    except (OracleMismatch, PropertyViolation, AuditViolation, Exception) as exc:
        stage = type(exc).__name__
        message = str(exc)
    if shrink:
        config, trace = shrink_case(config, trace, property_index=property_index)
    return FuzzFailure(
        seed=seed,
        stage=stage,
        error=message,
        config=asdict(config),
        trace_events=[list(map(list, ev)) for ev in trace.per_core_events],
        workload=trace.workload,
        events_per_core=trace.events_per_core,
        shrunk=shrink,
    )


def save_failure(failure: FuzzFailure, corpus: Optional[Path] = None) -> Path:
    root = Path(corpus) if corpus is not None else corpus_dir()
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"crash-seed{failure.seed}-{failure.stage.lower()}.json"
    path.write_text(failure.to_json())
    failure.path = str(path)
    return path


def reproduce(path) -> None:
    """Re-run a persisted fuzz failure; raises if it still reproduces."""
    data = json.loads(Path(path).read_text())
    config = config_from_dict(data["config"])
    events = [[tuple(ev) for ev in core] for core in data["trace_events"]]
    trace = _pack(config, data["workload"], events)
    property_index = data["seed"] if data.get("stage") == "PropertyViolation" else None
    _check_case(config, trace, property_index=property_index)


@dataclass
class FuzzReport:
    cases: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    wall_s: float = 0.0
    budget_exhausted: bool = False


def run_fuzz(
    seeds: int,
    *,
    budget_s: Optional[float] = None,
    start_seed: Optional[int] = None,
    events_per_core: int = 600,
    check_properties: bool = True,
    corpus: Optional[Path] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``seeds`` cases (stopping early at ``budget_s`` wall seconds),
    persisting every failure to the crash corpus."""
    t0 = time.monotonic()
    first = base_seed() if start_seed is None else start_seed
    report = FuzzReport()
    for seed in range(first, first + seeds):
        if budget_s is not None and time.monotonic() - t0 >= budget_s:
            report.budget_exhausted = True
            break
        failure = fuzz_one(
            seed, events_per_core=events_per_core, check_properties=check_properties
        )
        report.cases += 1
        if failure is not None:
            path = save_failure(failure, corpus)
            report.failures.append(failure)
            if log:
                log(f"seed {seed}: {failure.stage} -> {path}")
        elif log and report.cases % 25 == 0:
            log(f"{report.cases} case(s) clean")
    report.wall_s = time.monotonic() - t0
    return report
