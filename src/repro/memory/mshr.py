"""Miss status holding registers and the L2-to-memory write-back buffer.

Table 1's "each processor can have up to 16 outstanding memory requests"
is, in the legacy model, a bare per-core slot gate inside
:class:`repro.memory.dram.DRAM`.  ``MemoryConfig.mshr_entries`` replaces
that gate with a first-class MSHR file: one entry per in-flight line
fetch, held from request issue until the data lands on-chip (the DRAM
gate releases at *memory* completion, before the pin-link transfer — an
MSHR cannot retire until the fill is delivered).  Demand misses stall
for the oldest entry when the file is full; prefetches are dropped
(counted in ``PrefetchStats.dropped``); and a miss to a line whose
fetch is still in flight *coalesces* — it rides the existing entry's
data return instead of issuing a second DRAM fetch (no request message,
no data message, no DRAM access).

:class:`WriteBackBuffer` bounds the dirty-eviction path the same way:
the legacy model puts every write-back on the pin link the cycle its
eviction happens; a bounded buffer holds up to ``capacity`` in-flight
write-backs and delays further evictions' link traffic until the oldest
drains (the eviction itself never stalls — hardware retires the line
and parks the data).

Both structures are deliberately timing-only state machines over plain
heaps so the flat-array kernel (:mod:`repro.core.fastsim`) can keep them
live and call them directly, exactly like the DRAM and NoC objects.
Measurement counters (allocations, coalesced fills, stalls, peaks) are
zeroed by ``MemoryHierarchy.reset_stats``; occupancy state is machine
state and survives the warmup boundary.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple


class MSHRFile:
    """Per-core MSHR files with global in-flight line tracking.

    ``_heaps[core]`` holds the data-arrival times of that core's live
    entries; ``_inflight`` maps line address -> ``(data_done, segments)``
    of the most recent fetch of that line, for secondary-miss
    coalescing.  An entry whose ``data_done`` is in the past is free —
    heaps are pruned lazily against the asking time, the same
    busy-until discipline the DRAM slot pools use.
    """

    def __init__(self, entries: int, n_cores: int) -> None:
        self.entries = entries
        self._heaps: List[List[float]] = [[] for _ in range(n_cores)]
        self._inflight: Dict[int, Tuple[float, int]] = {}
        # Measurement counters (reset by MemoryHierarchy.reset_stats).
        self.allocations = 0
        self.coalesced = 0
        self.stalls = 0
        self.peak_occupancy = 0

    def _prune(self, core: int, now: float) -> List[float]:
        heap = self._heaps[core]
        inflight = self._inflight
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        # Bound _inflight: drop arrived lines (their data is no longer
        # in flight, so they can never coalesce again).
        if len(inflight) > 4 * sum(len(h) for h in self._heaps) + 64:
            for addr in [a for a, rec in inflight.items() if rec[0] <= now]:
                del inflight[addr]
        return heap

    def lookup(self, addr: int, now: float):
        """The in-flight record for ``addr`` if its data has not yet
        arrived by ``now``, else None."""
        rec = self._inflight.get(addr)
        if rec is not None and rec[0] > now:
            return rec
        return None

    def can_allocate(self, core: int, now: float) -> bool:
        """Room for a new entry without stalling?  (Prefetch gate.)"""
        return len(self._prune(core, now)) < self.entries

    def allocate(self, core: int, ready_time: float, demand: bool) -> float:
        """Claim an entry, returning the time the request may proceed.

        A demand miss with the file full waits for the oldest entry's
        data to arrive (and counts a stall); callers on the prefetch
        path must have checked :meth:`can_allocate` or :meth:`lookup`
        first, so prefetches never wait here.
        """
        heap = self._prune(core, ready_time)
        start = ready_time
        if len(heap) >= self.entries:
            start = heap[0]  # wait for the oldest in-flight fill
            if demand:
                self.stalls += 1
            self._prune(core, start)
        self.allocations += 1
        return start

    def commit(self, core: int, addr: int, data_done: float, segments: int) -> None:
        """Record the allocated entry's fetch: held until ``data_done``."""
        heap = self._heaps[core]
        heapq.heappush(heap, data_done)
        self._inflight[addr] = (data_done, segments)
        if len(heap) > self.peak_occupancy:
            self.peak_occupancy = len(heap)

    def coalesce(self, addr: int) -> None:
        """Count a secondary miss merged onto the in-flight entry."""
        self.coalesced += 1

    def occupancy(self, now: float) -> int:
        """Live entries across all cores (metrics gauge / trace counter)."""
        return sum(len(self._prune(core, now)) for core in range(len(self._heaps)))

    def reset_stats(self) -> None:
        self.allocations = 0
        self.coalesced = 0
        self.stalls = 0
        self.peak_occupancy = 0


class WriteBackBuffer:
    """Bounded buffer of in-flight L2-to-memory write-backs.

    ``insert`` sends the write-back's data message through ``send``
    (``PinLink.send_data`` in the reference engine, the flat link
    closure in the fast kernel) — immediately when a slot is free, else
    delayed to the oldest in-flight write-back's drain time.  A slot is
    held until its link transfer completes.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._drain: List[float] = []
        # Measurement counters (reset by MemoryHierarchy.reset_stats).
        self.inserted = 0
        self.full_stalls = 0
        self.peak_occupancy = 0

    def insert(self, now: float, segments: int, send) -> float:
        """Buffer one write-back; returns its link-drain completion time."""
        drain = self._drain
        while drain and drain[0] <= now:
            heapq.heappop(drain)
        start = now
        if len(drain) >= self.capacity:
            start = drain[0]  # the eviction's traffic waits for a slot
            self.full_stalls += 1
            while drain and drain[0] <= start:
                heapq.heappop(drain)
        done = send(start, segments)
        if done <= start:
            done = start  # infinite-bandwidth links drain instantly
        heapq.heappush(drain, done)
        self.inserted += 1
        if len(drain) > self.peak_occupancy:
            self.peak_occupancy = len(drain)
        return done

    def occupancy(self, now: float) -> int:
        drain = self._drain
        while drain and drain[0] <= now:
            heapq.heappop(drain)
        return len(drain)

    def reset_stats(self) -> None:
        self.inserted = 0
        self.full_stalls = 0
        self.peak_occupancy = 0
