"""Fixed-latency DRAM with a per-core outstanding-request limit.

Table 1: 400-cycle access time, and "each processor can have up to 16
outstanding memory requests".  Demand misses that hit the limit wait for
the oldest request to drain; prefetches are simply dropped (hardware
prefetch queues discard, they never stall the machine).
"""

from __future__ import annotations

import heapq
from typing import List

from repro.params import MemoryConfig


class DRAM:
    """Demand and prefetch requests draw from *separate* per-core slot
    pools: real memory controllers prioritise demand fetches, so a burst
    of 25 startup prefetches must never stall a demand miss behind a
    full MSHR file — it competes for pin bandwidth instead (see
    :mod:`repro.interconnect.link`)."""

    def __init__(self, config: MemoryConfig, n_cores: int) -> None:
        self.latency = config.latency_cycles
        self.max_outstanding = config.max_outstanding_per_core
        self._demand: List[List[float]] = [[] for _ in range(n_cores)]
        self._prefetch: List[List[float]] = [[] for _ in range(n_cores)]
        self.demand_requests = 0
        self.prefetch_requests = 0
        self.stalled_issues = 0
        # Optional open-row model.
        self.row_buffer = config.row_buffer
        self.row_lines = config.row_lines
        self.row_hit_latency = config.row_hit_latency
        self._open_rows: List[int] = [-1] * config.dram_banks
        self.row_hits = 0
        self.row_misses = 0
        # Optional read-only event tracer (repro.obs.trace).
        self.tracer = None

    def _access_latency(self, addr: int) -> float:
        """Latency of one DRAM access, honouring the open-row model."""
        if not self.row_buffer:
            return self.latency
        row = addr // self.row_lines
        bank = row % len(self._open_rows)
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return self.row_hit_latency
        self._open_rows[bank] = row
        self.row_misses += 1
        return self.latency

    @staticmethod
    def _prune(heap: List[float], now: float) -> List[float]:
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        return heap

    def can_issue(self, core: int, now: float) -> bool:
        """Room in the core's prefetch slot pool?"""
        return len(self._prune(self._prefetch[core], now)) < self.max_outstanding

    def issue_demand(self, core: int, ready_time: float, addr: int = 0) -> float:
        """Issue a demand fetch, waiting for a free demand slot if necessary.

        Returns the completion time (data available at the pins).
        """
        heap = self._prune(self._demand[core], ready_time)
        start = ready_time
        if len(heap) >= self.max_outstanding:
            start = heap[0]  # wait for the oldest outstanding request
            self.stalled_issues += 1
            self._prune(heap, start)
        completion = start + self._access_latency(addr)
        heapq.heappush(heap, completion)
        self.demand_requests += 1
        if self.tracer is not None:
            self.tracer.span(
                self.tracer.dram_tid, "demand", start, completion - start,
                ("core", core),
            )
        return completion

    def issue_prefetch(self, core: int, ready_time: float, addr: int = 0) -> float:
        """Issue a prefetch fetch; caller must have checked :meth:`can_issue`."""
        completion = ready_time + self._access_latency(addr)
        heapq.heappush(self._prefetch[core], completion)
        self.prefetch_requests += 1
        if self.tracer is not None:
            self.tracer.span(
                self.tracer.dram_tid, "prefetch", ready_time,
                completion - ready_time, ("core", core),
            )
        return completion

    def service(self, core: int, ready_time: float, addr: int, demand: bool) -> float:
        """Service one access with no slot gating (MSHR mode).

        When a first-class MSHR file (:class:`repro.memory.mshr.MSHRFile`)
        owns the outstanding-miss limit, the DRAM's own per-core slot
        pools are bypassed: the MSHR already decided whether/when the
        request may issue.  Counters, the open-row model and the trace
        span match :meth:`issue_demand`/:meth:`issue_prefetch` exactly.
        """
        completion = ready_time + self._access_latency(addr)
        if demand:
            self.demand_requests += 1
            name = "demand"
        else:
            self.prefetch_requests += 1
            name = "prefetch"
        if self.tracer is not None:
            self.tracer.span(
                self.tracer.dram_tid, name, ready_time,
                completion - ready_time, ("core", core),
            )
        return completion

    def outstanding(self, core: int, now: float) -> int:
        return len(self._prune(self._demand[core], now)) + len(
            self._prune(self._prefetch[core], now)
        )
