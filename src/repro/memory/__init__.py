"""Off-chip DRAM model."""

from repro.memory.dram import DRAM

__all__ = ["DRAM"]
