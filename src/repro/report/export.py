"""Export simulation results to JSON / CSV for external analysis."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List

from repro.core.results import SimulationResult

#: The flat metric set every exported row carries.
EXPORT_FIELDS = (
    "workload",
    "config",
    "seed",
    "elapsed_cycles",
    "instructions",
    "ipc",
    "l1i_miss_rate",
    "l1d_miss_rate",
    "l2_miss_rate",
    "l2_demand_misses",
    "bandwidth_gbs",
    "compression_ratio",
    "link_bytes",
    "pf_l2_issued",
    "pf_l2_coverage",
    "pf_l2_accuracy",
)


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    l2_report = result.prefetcher_report("l2")
    return {
        "workload": result.workload,
        "config": result.config_name,
        "seed": result.seed,
        "elapsed_cycles": result.elapsed_cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "l1i_miss_rate": result.l1i.miss_rate,
        "l1d_miss_rate": result.l1d.miss_rate,
        "l2_miss_rate": result.l2.miss_rate,
        "l2_demand_misses": result.l2.demand_misses,
        "bandwidth_gbs": result.bandwidth_gbs,
        "compression_ratio": result.compression_ratio,
        "link_bytes": result.link.bytes_total,
        "pf_l2_issued": l2_report.issued,
        "pf_l2_coverage": l2_report.coverage,
        "pf_l2_accuracy": l2_report.accuracy,
    }


def results_to_json(results: Iterable[SimulationResult], indent: int = 2) -> str:
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_to_csv(results: Iterable[SimulationResult]) -> str:
    rows: List[Dict[str, object]] = [result_to_dict(r) for r in results]
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=list(EXPORT_FIELDS))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()
