"""Export simulation results to JSON / CSV for external analysis.

Two serialisation depths live here:

* the flat :data:`EXPORT_FIELDS` row (:func:`result_to_dict`) for
  spreadsheets and plotting scripts, which drops the raw counters; and
* the *full* round-trip form (:func:`result_to_full_dict` /
  :func:`result_from_dict`) that preserves every counter bit-exactly —
  the on-disk result cache (:mod:`repro.core.diskcache`) is built on it.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Tuple

from repro.core.results import SimulationResult
from repro.prefetch.taxonomy import TaxonomyCounts
from repro.stats.counters import CacheStats, CompressionStats, LinkStats, PrefetchStats

#: The flat metric set every exported row carries.
EXPORT_FIELDS = (
    "workload",
    "config",
    "seed",
    "elapsed_cycles",
    "instructions",
    "ipc",
    "l1i_miss_rate",
    "l1d_miss_rate",
    "l2_miss_rate",
    "l2_demand_misses",
    "bandwidth_gbs",
    "compression_ratio",
    "link_bytes",
    "pf_l2_issued",
    "pf_l2_dropped",
    "pf_l2_coverage",
    "pf_l2_accuracy",
)


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    l2_report = result.prefetcher_report("l2")
    row: Dict[str, object] = {
        "workload": result.workload,
        "config": result.config_name,
        "seed": result.seed,
        "elapsed_cycles": result.elapsed_cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "l1i_miss_rate": result.l1i.miss_rate,
        "l1d_miss_rate": result.l1d.miss_rate,
        "l2_miss_rate": result.l2.miss_rate,
        "l2_demand_misses": result.l2.demand_misses,
        "bandwidth_gbs": result.bandwidth_gbs,
        "compression_ratio": result.compression_ratio,
        "link_bytes": result.link.bytes_total,
        "pf_l2_issued": l2_report.issued,
        "pf_l2_dropped": result.prefetch["l2"].dropped,
        "pf_l2_coverage": l2_report.coverage,
        "pf_l2_accuracy": l2_report.accuracy,
    }
    # The extras dict rides along so markers like guard truncation
    # (``truncated``) and skipped trace records stay visible to JSON
    # consumers; the CSV form keeps the flat EXPORT_FIELDS shape.
    if result.extra:
        row["extra"] = dict(result.extra)
    return row


def results_to_json(results: Iterable[SimulationResult], indent: int = 2) -> str:
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


# ---------------------------------------------------------------------------
# full round-trip serialisation (used by the disk cache)
# ---------------------------------------------------------------------------

#: Bump when the full-dict layout changes; consumers key their storage on it.
RESULT_SCHEMA_VERSION = 1


def _counters_to_dict(obj) -> Dict[str, object]:
    return {f: getattr(obj, f) for f in obj.__dataclass_fields__}


def _counters_from_dict(cls, data: Dict[str, object]):
    return cls(**data)


def result_to_full_dict(result: SimulationResult) -> Dict[str, object]:
    """Serialise a result completely (floats survive JSON bit-exactly)."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "workload": result.workload,
        "config_name": result.config_name,
        "seed": result.seed,
        "elapsed_cycles": result.elapsed_cycles,
        "instructions": result.instructions,
        "clock_ghz": result.clock_ghz,
        "events": result.events,
        "l1i": _counters_to_dict(result.l1i),
        "l1d": _counters_to_dict(result.l1d),
        "l2": _counters_to_dict(result.l2),
        "prefetch": {k: _counters_to_dict(v) for k, v in result.prefetch.items()},
        "link": _counters_to_dict(result.link),
        "compression": _counters_to_dict(result.compression),
        "extra": dict(result.extra),
        "taxonomy": {k: _counters_to_dict(v) for k, v in result.taxonomy.items()},
        "latency": {k: dict(v) for k, v in result.latency.items()},
    }


def result_from_dict(data: Dict[str, object]) -> SimulationResult:
    """Inverse of :func:`result_to_full_dict`."""
    schema = data.get("schema")
    if schema != RESULT_SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema {schema!r}")
    return SimulationResult(
        workload=data["workload"],
        config_name=data["config_name"],
        seed=data["seed"],
        elapsed_cycles=data["elapsed_cycles"],
        instructions=data["instructions"],
        l1i=_counters_from_dict(CacheStats, data["l1i"]),
        l1d=_counters_from_dict(CacheStats, data["l1d"]),
        l2=_counters_from_dict(CacheStats, data["l2"]),
        prefetch={k: _counters_from_dict(PrefetchStats, v) for k, v in data["prefetch"].items()},
        link=_counters_from_dict(LinkStats, data["link"]),
        compression=_counters_from_dict(CompressionStats, data["compression"]),
        clock_ghz=data["clock_ghz"],
        events=data["events"],
        extra=dict(data["extra"]),
        taxonomy={k: _counters_from_dict(TaxonomyCounts, v) for k, v in data["taxonomy"].items()},
        latency={k: dict(v) for k, v in data["latency"].items()},
    )


def diff_full_dicts(
    a: Dict[str, object],
    b: Dict[str, object],
    ignore: Iterable[str] = (),
) -> List[Tuple[str, object, object]]:
    """Recursively diff two :func:`result_to_full_dict` trees.

    Returns ``(dotted.path, a_value, b_value)`` triples for every leaf
    that differs, skipping paths listed in ``ignore`` (exact dotted
    paths).  The verification subsystem uses this to state metamorphic
    properties as "these two runs differ in exactly this set of
    counters" rather than as opaque fingerprint comparisons.
    """
    skip = frozenset(ignore)
    out: List[Tuple[str, object, object]] = []

    def walk(x: object, y: object, path: str) -> None:
        if path in skip:
            return
        if isinstance(x, dict) and isinstance(y, dict):
            for key in sorted(set(x) | set(y)):
                walk(x.get(key), y.get(key), f"{path}.{key}" if path else str(key))
        elif x != y:
            out.append((path, x, y))

    walk(a, b, "")
    return out


def result_fingerprint(result: SimulationResult) -> str:
    """SHA-256 over the canonical JSON of the full result.

    Two results fingerprint identically iff every counter, float and
    histogram bucket is bit-identical (floats round-trip exactly through
    ``repr``).  The audit subsystem uses this to prove that enabling
    ``REPRO_AUDIT`` does not perturb simulations, and the golden-snapshot
    test uses it to detect behavioural drift.

    ``attr_*`` extras are stripped before hashing: causal attribution
    (:mod:`repro.obs.attribution`) records observations *about* the run,
    and stripping its rows here is what lets the on/off bit-identity
    contract be stated as plain fingerprint equality.  Cross-engine
    equality of the attribution rows themselves is enforced separately
    (the dual-engine test fixtures compare full dicts, extras included).
    """
    import hashlib

    full = result_to_full_dict(result)
    extra = full["extra"]
    if any(k.startswith("attr_") for k in extra):
        full["extra"] = {
            k: v for k, v in extra.items() if not k.startswith("attr_")
        }
    blob = json.dumps(full, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def results_to_csv(results: Iterable[SimulationResult]) -> str:
    rows: List[Dict[str, object]] = [result_to_dict(r) for r in results]
    out = io.StringIO()
    # The flat CSV schema stays EXPORT_FIELDS; the open-ended "extra"
    # mapping is JSON-only.
    writer = csv.DictWriter(out, fieldnames=list(EXPORT_FIELDS), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()
