"""Aligned plain-text tables for experiment output."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float]


class Table:
    """A simple right-aligned numeric table with a left-aligned key column.

    >>> t = Table(["workload", "speedup"])
    >>> t.add_row(["zeus", 1.213])
    >>> print(t.render())       # doctest: +NORMALIZE_WHITESPACE
    workload   speedup
    --------   -------
    zeus         1.213
    """

    def __init__(self, columns: Sequence[str], float_format: str = "{:.3f}") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.float_format = float_format
        self._rows: List[List[str]] = []

    def add_row(self, cells: Sequence[Cell]) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.columns)} columns"
            )
        self._rows.append([self._format(c) for c in cells])

    def _format(self, cell: Cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def render(self, separator: str = "   ") -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        header = separator.join(
            c.ljust(widths[i]) if i == 0 else c.rjust(widths[i])
            for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append(separator.join(("-" * widths[i]) for i in range(len(widths))))
        for row in self._rows:
            lines.append(
                separator.join(
                    cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                    for i, cell in enumerate(row)
                )
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._rows)

    def __str__(self) -> str:
        return self.render()
