"""Prefetcher x compression interaction matrix (EQ 5 over policy pairs).

The paper's Table 5 fixes one prefetcher (stride) and one compression
scheme (FPC) and reports the interaction per workload.  This module
generalises that to the full policy cross product: every registered
prefetcher family against every compression scheme, each pair scored
with EQ 5 against the *same* shared baseline::

    Speedup(P, C) = Speedup(P) * Speedup(C) * (1 + Interaction(P, C))

Per (workload, prefetcher, scheme) cell, four runs are needed — base,
prefetch-only, compression-only, both — but the single-policy runs are
shared across the row/column, so a full N x M matrix over one workload
costs ``1 + N' + M' + N'*M'`` simulations (primes exclude the ``none``
variants, whose pairs are degenerate and score an exact 0.0).

``repro matrix`` is the CLI front end; it renders the ranked cell
table and optionally writes the full matrix as CSV.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.interaction import interaction_coefficient, speedup
from repro.core.system import CMPSystem
from repro.obs import telemetry as _telemetry
from repro.params import SystemConfig

#: Prefetcher family variants the matrix sweeps ("none" = row baseline).
PREFETCHERS: Tuple[str, ...] = ("none", "stride", "sequential", "pointer")

#: Compression scheme variants ("none" = column baseline).
SCHEMES: Tuple[str, ...] = ("none", "fpc", "bdi")


@dataclass(frozen=True)
class MatrixCell:
    """One (workload, prefetcher, scheme) pair's EQ 5 decomposition."""

    workload: str
    prefetcher: str
    scheme: str
    speedup_pref: float
    speedup_compr: float
    speedup_both: float
    # Causal-attribution annotation (``run_matrix(attribution=True)``):
    # the measured share of the *both*-run's demand misses attributed to
    # prefetch pollution / compression expansion.  None without it.
    pollution_share: Optional[float] = None
    expansion_share: Optional[float] = None

    @property
    def interaction(self) -> float:
        return interaction_coefficient(
            self.speedup_both, self.speedup_pref, self.speedup_compr
        )


@dataclass(frozen=True)
class MatrixReport:
    """All cells of one matrix sweep, ranked by interaction (best first)."""

    cells: Tuple[MatrixCell, ...]
    workloads: Tuple[str, ...]
    prefetchers: Tuple[str, ...]
    schemes: Tuple[str, ...]
    simulations: int
    attribution: bool = False

    def ranked(self) -> List[MatrixCell]:
        return sorted(
            self.cells,
            key=lambda c: (-c.interaction, c.workload, c.prefetcher, c.scheme),
        )

    def to_csv(self) -> str:
        out = io.StringIO()
        header = (
            "workload,prefetcher,scheme,speedup_pref,speedup_compr,"
            "speedup_both,interaction"
        )
        if self.attribution:
            header += ",pollution_share,expansion_share"
        out.write(header + "\n")
        for c in self.ranked():
            row = (
                f"{c.workload},{c.prefetcher},{c.scheme},"
                f"{c.speedup_pref:.6f},{c.speedup_compr:.6f},"
                f"{c.speedup_both:.6f},{c.interaction:.6f}"
            )
            if self.attribution:
                pol = "" if c.pollution_share is None else f"{c.pollution_share:.6f}"
                exp = "" if c.expansion_share is None else f"{c.expansion_share:.6f}"
                row += f",{pol},{exp}"
            out.write(row + "\n")
        return out.getvalue()


def pair_config(base: SystemConfig, prefetcher: str, scheme: str) -> SystemConfig:
    """The base config with one prefetcher family and one scheme enabled.

    Mirrors the paper's feature combos: prefetching toggles the L1/L2
    prefetchers with the given kind; compression toggles both cache and
    link compression with the given scheme (the ``compr`` combo).
    """
    cfg = base
    if prefetcher != "none":
        cfg = replace(cfg, prefetch=replace(cfg.prefetch, enabled=True, kind=prefetcher))
    if scheme != "none":
        cfg = replace(
            cfg,
            l2=replace(cfg.l2, compressed=True, scheme=scheme),
            link=replace(cfg.link, compressed=True),
        )
    return cfg


def _expected_simulations(
    workloads: Sequence[str],
    prefetchers: Sequence[str],
    schemes: Sequence[str],
) -> int:
    """Distinct (prefetcher, scheme) runs the sweep will memoise, per
    workload, times the workload count — the progress denominator."""
    keys = {("none", "none")}
    for prefetcher in prefetchers:
        for scheme in schemes:
            keys.add((prefetcher, "none"))
            keys.add(("none", scheme))
            keys.add((prefetcher, scheme))
    return len(workloads) * len(keys)


def run_matrix(
    workloads: Sequence[str],
    *,
    base_config: SystemConfig,
    prefetchers: Sequence[str] = PREFETCHERS,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 0,
    events: int = 10_000,
    warmup: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    attribution: bool = False,
) -> MatrixReport:
    """Sweep every prefetcher x scheme pair over each workload.

    ``base_config`` must have prefetching and compression off; the
    matrix derives every variant from it with :func:`pair_config` so all
    cells share one baseline.

    ``progress`` accepts either a live renderer with a ``point_done``
    method (:class:`repro.obs.progress.SweepProgress`) or a bare
    ``callable(message)``.  Each simulated point also emits a
    ``matrix-point`` telemetry record, and the sweep a final ``matrix``
    record (:mod:`repro.obs.telemetry`).

    ``attribution=True`` runs every point with the causal-attribution
    tracker attached (read-only, so speedups and interactions are
    unchanged) and annotates each cell with the measured pollution and
    expansion shares of its *both* run's demand misses.
    """
    if base_config.prefetch.enabled or base_config.l2.compressed:
        raise ValueError("matrix base config must have prefetching and compression off")
    if warmup is None:
        warmup = events
    cells: List[MatrixCell] = []
    simulations = 0
    total = _expected_simulations(workloads, prefetchers, schemes)
    point_done = getattr(progress, "point_done", None)
    t0 = time.perf_counter()

    for workload in workloads:
        runtimes: Dict[Tuple[str, str], float] = {}
        shares: Dict[Tuple[str, str], Tuple[float, float]] = {}

        def runtime(prefetcher: str, scheme: str) -> float:
            nonlocal simulations
            key = (prefetcher, scheme)
            if key not in runtimes:
                cfg = pair_config(base_config, prefetcher, scheme)
                if attribution:
                    cfg = replace(cfg, attribution=True)
                system = CMPSystem(cfg, workload, seed=seed)
                result = system.run(events, warmup_events=warmup)
                runtimes[key] = result.runtime
                att = system.hierarchy.attribution
                if att is not None:
                    shares[key] = (att.pollution_share(), att.expansion_share())
                simulations += 1
                _telemetry.emit(
                    "matrix-point",
                    workload=workload,
                    prefetcher=prefetcher,
                    scheme=scheme,
                    runtime=result.runtime,
                    done=simulations,
                    total=total,
                )
                if point_done is not None:
                    point_done(simulations, total, "sim")
                elif progress is not None:
                    progress(f"{workload}: {prefetcher}+{scheme} done")
            return runtimes[key]

        base_rt = runtime("none", "none")
        for prefetcher in prefetchers:
            for scheme in schemes:
                s_pref = speedup(base_rt, runtime(prefetcher, "none"))
                s_compr = speedup(base_rt, runtime("none", scheme))
                s_both = speedup(base_rt, runtime(prefetcher, scheme))
                pair_shares = shares.get((prefetcher, scheme))
                cells.append(
                    MatrixCell(
                        workload=workload,
                        prefetcher=prefetcher,
                        scheme=scheme,
                        speedup_pref=s_pref,
                        speedup_compr=s_compr,
                        speedup_both=s_both,
                        pollution_share=(
                            pair_shares[0] if pair_shares is not None else None
                        ),
                        expansion_share=(
                            pair_shares[1] if pair_shares is not None else None
                        ),
                    )
                )

    _telemetry.emit(
        "matrix",
        workloads=list(workloads),
        prefetchers=list(prefetchers),
        schemes=list(schemes),
        cells=len(cells),
        simulations=simulations,
        attribution=attribution,
        wall_s=time.perf_counter() - t0,
    )
    return MatrixReport(
        cells=tuple(cells),
        workloads=tuple(workloads),
        prefetchers=tuple(prefetchers),
        schemes=tuple(schemes),
        simulations=simulations,
        attribution=attribution,
    )
