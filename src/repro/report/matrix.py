"""Prefetcher x compression interaction matrix (EQ 5 over policy pairs).

The paper's Table 5 fixes one prefetcher (stride) and one compression
scheme (FPC) and reports the interaction per workload.  This module
generalises that to the full policy cross product: every registered
prefetcher family against every compression scheme, each pair scored
with EQ 5 against the *same* shared baseline::

    Speedup(P, C) = Speedup(P) * Speedup(C) * (1 + Interaction(P, C))

Per (workload, prefetcher, scheme) cell, four runs are needed — base,
prefetch-only, compression-only, both — but the single-policy runs are
shared across the row/column, so a full N x M matrix over one workload
costs ``1 + N' + M' + N'*M'`` simulations (primes exclude the ``none``
variants, whose pairs are degenerate and score an exact 0.0).

``repro matrix`` is the CLI front end; it renders the ranked cell
table and optionally writes the full matrix as CSV.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.interaction import interaction_coefficient, speedup
from repro.core.system import CMPSystem
from repro.params import SystemConfig

#: Prefetcher family variants the matrix sweeps ("none" = row baseline).
PREFETCHERS: Tuple[str, ...] = ("none", "stride", "sequential", "pointer")

#: Compression scheme variants ("none" = column baseline).
SCHEMES: Tuple[str, ...] = ("none", "fpc", "bdi")


@dataclass(frozen=True)
class MatrixCell:
    """One (workload, prefetcher, scheme) pair's EQ 5 decomposition."""

    workload: str
    prefetcher: str
    scheme: str
    speedup_pref: float
    speedup_compr: float
    speedup_both: float

    @property
    def interaction(self) -> float:
        return interaction_coefficient(
            self.speedup_both, self.speedup_pref, self.speedup_compr
        )


@dataclass(frozen=True)
class MatrixReport:
    """All cells of one matrix sweep, ranked by interaction (best first)."""

    cells: Tuple[MatrixCell, ...]
    workloads: Tuple[str, ...]
    prefetchers: Tuple[str, ...]
    schemes: Tuple[str, ...]
    simulations: int

    def ranked(self) -> List[MatrixCell]:
        return sorted(
            self.cells,
            key=lambda c: (-c.interaction, c.workload, c.prefetcher, c.scheme),
        )

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write(
            "workload,prefetcher,scheme,speedup_pref,speedup_compr,"
            "speedup_both,interaction\n"
        )
        for c in self.ranked():
            out.write(
                f"{c.workload},{c.prefetcher},{c.scheme},"
                f"{c.speedup_pref:.6f},{c.speedup_compr:.6f},"
                f"{c.speedup_both:.6f},{c.interaction:.6f}\n"
            )
        return out.getvalue()


def pair_config(base: SystemConfig, prefetcher: str, scheme: str) -> SystemConfig:
    """The base config with one prefetcher family and one scheme enabled.

    Mirrors the paper's feature combos: prefetching toggles the L1/L2
    prefetchers with the given kind; compression toggles both cache and
    link compression with the given scheme (the ``compr`` combo).
    """
    cfg = base
    if prefetcher != "none":
        cfg = replace(cfg, prefetch=replace(cfg.prefetch, enabled=True, kind=prefetcher))
    if scheme != "none":
        cfg = replace(
            cfg,
            l2=replace(cfg.l2, compressed=True, scheme=scheme),
            link=replace(cfg.link, compressed=True),
        )
    return cfg


def run_matrix(
    workloads: Sequence[str],
    *,
    base_config: SystemConfig,
    prefetchers: Sequence[str] = PREFETCHERS,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 0,
    events: int = 10_000,
    warmup: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> MatrixReport:
    """Sweep every prefetcher x scheme pair over each workload.

    ``base_config`` must have prefetching and compression off; the
    matrix derives every variant from it with :func:`pair_config` so all
    cells share one baseline.
    """
    if base_config.prefetch.enabled or base_config.l2.compressed:
        raise ValueError("matrix base config must have prefetching and compression off")
    if warmup is None:
        warmup = events
    cells: List[MatrixCell] = []
    simulations = 0

    for workload in workloads:
        runtimes: Dict[Tuple[str, str], float] = {}

        def runtime(prefetcher: str, scheme: str) -> float:
            nonlocal simulations
            key = (prefetcher, scheme)
            if key not in runtimes:
                cfg = pair_config(base_config, prefetcher, scheme)
                system = CMPSystem(cfg, workload, seed=seed)
                result = system.run(events, warmup_events=warmup)
                runtimes[key] = result.runtime
                simulations += 1
                if progress is not None:
                    progress(f"{workload}: {prefetcher}+{scheme} done")
            return runtimes[key]

        base_rt = runtime("none", "none")
        for prefetcher in prefetchers:
            for scheme in schemes:
                s_pref = speedup(base_rt, runtime(prefetcher, "none"))
                s_compr = speedup(base_rt, runtime("none", scheme))
                s_both = speedup(base_rt, runtime(prefetcher, scheme))
                cells.append(
                    MatrixCell(
                        workload=workload,
                        prefetcher=prefetcher,
                        scheme=scheme,
                        speedup_pref=s_pref,
                        speedup_compr=s_compr,
                        speedup_both=s_both,
                    )
                )

    return MatrixReport(
        cells=tuple(cells),
        workloads=tuple(workloads),
        prefetchers=tuple(prefetchers),
        schemes=tuple(schemes),
        simulations=simulations,
    )
