"""Result presentation: aligned tables, ASCII bar charts, CSV/JSON export."""

from repro.report.tables import Table
from repro.report.charts import bar_chart, grouped_bar_chart
from repro.report.export import result_to_dict, results_to_csv, results_to_json

__all__ = [
    "Table",
    "bar_chart",
    "grouped_bar_chart",
    "result_to_dict",
    "results_to_csv",
    "results_to_json",
]
