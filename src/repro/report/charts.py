"""ASCII bar charts, so benches and examples can render paper figures in
a terminal without any plotting dependency."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    unit: str = "",
    zero_origin: bool = True,
) -> str:
    """One horizontal bar per key.  Negative values draw to the left of a
    shared origin so slowdowns are visually distinct from speedups."""
    if not values:
        raise ValueError("nothing to chart")
    lo = min(values.values())
    hi = max(values.values())
    if zero_origin:
        lo, hi = min(lo, 0.0), max(hi, 0.0)
    span = hi - lo or 1.0
    label_w = max(len(k) for k in values)
    origin = round((0.0 - lo) / span * width)
    lines = []
    for key, value in values.items():
        pos = round((value - lo) / span * width)
        if value >= 0:
            bar = " " * origin + "#" * max(pos - origin, 0 if value == 0 else 1)
        else:
            bar = " " * pos + "#" * (origin - pos)
        lines.append(f"{key.ljust(label_w)} |{bar.ljust(width)}| {value:+.1f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """A labelled section of bars per group (one group per workload,
    one bar per configuration — the shape of most paper figures)."""
    if not groups:
        raise ValueError("nothing to chart")
    flat: Dict[str, float] = {}
    sections = []
    all_values = [v for series in groups.values() for v in series.values()]
    lo = min(min(all_values), 0.0)
    hi = max(max(all_values), 0.0)
    span = hi - lo or 1.0
    label_w = max(len(k) for series in groups.values() for k in series)
    origin = round((0.0 - lo) / span * width)
    for group, series in groups.items():
        lines = [f"{group}:"]
        for key, value in series.items():
            pos = round((value - lo) / span * width)
            if value >= 0:
                bar = " " * origin + "#" * max(pos - origin, 0 if value == 0 else 1)
            else:
                bar = " " * pos + "#" * (origin - pos)
            lines.append(f"  {key.ljust(label_w)} |{bar.ljust(width)}| {value:+.1f}{unit}")
        sections.append("\n".join(lines))
    del flat
    return "\n\n".join(sections)


def timeseries_chart(series: Mapping[str, Sequence[float]], *, width: int = 60) -> str:
    """One sparkline row per named series (the shape of the interval
    metrics sampler's columns), each annotated with min/mean/max.  Series
    longer than ``width`` are resampled by bucket mean so a long run
    still fits one terminal row."""
    if not series:
        raise ValueError("nothing to chart")
    label_w = max(len(k) for k in series)
    lines = []
    for name, raw in series.items():
        values = list(raw)
        if not values:
            continue
        lo, mean, hi = min(values), sum(values) / len(values), max(values)
        if len(values) > width:
            step = len(values) / width
            values = [
                (lambda chunk: sum(chunk) / len(chunk))(
                    values[int(i * step): max(int((i + 1) * step), int(i * step) + 1)]
                )
                for i in range(width)
            ]
        lines.append(
            f"{name.ljust(label_w)} {sparkline(values)} "
            f"min={lo:.4g} mean={mean:.4g} max={hi:.4g}"
        )
    if not lines:
        raise ValueError("nothing to chart")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Compact trend glyphs for a numeric series (e.g. counter history)."""
    if not values:
        raise ValueError("nothing to chart")
    glyphs = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    return "".join(glyphs[int((v - lo) / span * (len(glyphs) - 1))] for v in values)
