"""repro: a reproduction of "Interactions Between Compression and
Prefetching in Chip Multiprocessors" (Alameldeen & Wood, HPCA 2007).

A trace-driven CMP memory-system simulator with:

* Frequent Pattern Compression and a decoupled variable-segment L2;
* link (pin) compression with flit-level message sizing;
* Power4-style L1I/L1D/L2 stride prefetchers;
* the paper's adaptive prefetch throttle built on compression's spare
  address tags;
* MSI coherence, a shared banked L2, a bandwidth-limited pin link, and
  synthetic workload models of the paper's eight benchmarks.

Quickstart::

    from repro import CMPSystem, SystemConfig

    config = SystemConfig().scaled(4).with_features(
        cache_compression=True, link_compression=True, prefetching=True)
    result = CMPSystem(config, "zeus", seed=0).run(events_per_core=20_000)
    print(result.summary())
"""

from repro.params import (
    CacheConfig,
    L2Config,
    LinkConfig,
    MemoryConfig,
    PrefetchConfig,
    SystemConfig,
)
from repro.core import (
    CMPSystem,
    CONFIG_FEATURES,
    DiskCache,
    InteractionBreakdown,
    MissClassification,
    ParallelRunner,
    PointError,
    PrefetcherReport,
    SimulationResult,
    classify_misses,
    clear_cache,
    interaction_coefficient,
    make_config,
    run_matrix,
    run_point,
    run_seeds,
    simulate,
    speedup,
)
from repro.workloads import WORKLOADS, WorkloadSpec, get_spec
from repro.stats import ConfidenceInterval, mean_ci
from repro.trace import TracePack, record_trace
from repro.report import Table, bar_chart, results_to_csv, results_to_json
from repro.obs import AuditViolation, Auditor, Violation, audit_hierarchy
from repro.core.bottleneck import CycleBreakdown, analyze
from repro.core.sweep import Sweep, SweepResults
from repro.core.validate import validate_hierarchy
from repro.workloads.custom import WorkloadBuilder, derive, register

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "L2Config",
    "LinkConfig",
    "MemoryConfig",
    "PrefetchConfig",
    "SystemConfig",
    "CMPSystem",
    "CONFIG_FEATURES",
    "InteractionBreakdown",
    "MissClassification",
    "PrefetcherReport",
    "SimulationResult",
    "classify_misses",
    "clear_cache",
    "DiskCache",
    "ParallelRunner",
    "PointError",
    "interaction_coefficient",
    "make_config",
    "run_matrix",
    "run_point",
    "run_seeds",
    "simulate",
    "speedup",
    "WORKLOADS",
    "WorkloadSpec",
    "get_spec",
    "ConfidenceInterval",
    "mean_ci",
    "TracePack",
    "record_trace",
    "Table",
    "bar_chart",
    "results_to_csv",
    "results_to_json",
    "AuditViolation",
    "Auditor",
    "Violation",
    "audit_hierarchy",
    "CycleBreakdown",
    "analyze",
    "Sweep",
    "SweepResults",
    "validate_hierarchy",
    "WorkloadBuilder",
    "derive",
    "register",
    "__version__",
]
