"""Core timing model."""

from repro.cpu.core import CoreTimingModel

__all__ = ["CoreTimingModel"]
