"""Core timing model: base CPI plus partially-hidden memory stalls.

The paper's cores are 4-wide out-of-order with a 64-entry instruction
window; their ability to overlap miss latency with execution shows up in
EQ 1's instructions/cycle term.  We model that ability directly: compute
work advances the local clock at ``cpi_base`` cycles per instruction, and
a memory access that takes ``latency`` cycles beyond the L1 stalls the
core for ``latency * (1 - tolerance)`` cycles, where ``tolerance`` is the
per-workload fraction of miss latency the window can hide (scientific
codes with independent strided loads hide more than pointer-chasing
commercial codes).
"""

from __future__ import annotations

from repro.stats.counters import CoreStats


class CoreTimingModel:
    __slots__ = (
        "core_id",
        "cpi_base",
        "tolerance",
        "hide_cycles",
        "time",
        "start_time",
        "stats",
        "tracer",
    )

    def __init__(
        self,
        core_id: int,
        cpi_base: float = 1.0,
        tolerance: float = 0.3,
        hide_cycles: float = 12.0,
    ) -> None:
        """``hide_cycles`` is the latency any out-of-order window hides
        completely (roughly an L2-hit's worth); ``tolerance`` is the
        fraction of the *remaining* latency overlapped with useful work.
        """
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        if cpi_base <= 0:
            raise ValueError("cpi_base must be positive")
        if hide_cycles < 0:
            raise ValueError("hide_cycles must be non-negative")
        self.core_id = core_id
        self.cpi_base = cpi_base
        self.tolerance = tolerance
        self.hide_cycles = hide_cycles
        self.time = 0.0
        self.start_time = 0.0  # measurement epoch (set after warmup)
        self.stats = CoreStats()
        # Optional read-only event tracer (repro.obs.trace).  The inlined
        # event loop charges stalls itself, so this only fires on the
        # non-inlined path (validation / direct use of the model).
        self.tracer = None

    def advance_compute(self, instructions: int) -> None:
        self.time += instructions * self.cpi_base
        self.stats.instructions += instructions
        self.stats.cycles = self.time - self.start_time

    def apply_memory_latency(self, latency: float, *, l1_hit: bool) -> None:
        """Charge an access's latency; L1 hits are fully pipelined."""
        if l1_hit or latency <= 0:
            return
        stall = max(0.0, latency - self.hide_cycles) * (1.0 - self.tolerance)
        if self.tracer is not None and stall > 0.0:
            self.tracer.span(
                self.tracer.core_tid(self.core_id), "stall", self.time, stall
            )
        self.time += stall
        self.stats.memory_stall_cycles += stall
        self.stats.cycles = self.time - self.start_time

    def reset_stats(self) -> None:
        """Zero counters after warmup.

        The clock keeps running (link and DRAM busy-until times stay
        consistent); measurement simply restarts from the current time.
        """
        self.start_time = self.time
        self.stats = CoreStats()
