"""Synthetic workload generators calibrated to the paper's eight benchmarks."""

from repro.workloads.base import IFETCH, LOAD, STORE, TraceGenerator, WorkloadSpec
from repro.workloads.values import VALUE_CLASSES, ValueModel
from repro.workloads.registry import WORKLOADS, commercial_names, scientific_names, get_spec

__all__ = [
    "IFETCH",
    "LOAD",
    "STORE",
    "TraceGenerator",
    "WorkloadSpec",
    "VALUE_CLASSES",
    "ValueModel",
    "WORKLOADS",
    "commercial_names",
    "scientific_names",
    "get_spec",
]
