"""Custom workload construction and (de)serialization.

Downstream users rarely want exactly the paper's eight benchmarks; this
module gives them three ways to make their own:

* :func:`spec_from_dict` / :func:`spec_to_dict` — JSON-friendly
  round-tripping, so specs can live in config files
  (``python -m repro`` accepts them via the registry after
  :func:`register`);
* :func:`derive` — start from a registered benchmark and override
  fields (``derive("zeus", ws_factor=5.0)``);
* :class:`WorkloadBuilder` — a guided builder with named presets for
  the common axes (footprint, streaming behaviour, compressibility).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

from repro.workloads.base import WorkloadSpec
from repro.workloads.registry import WORKLOADS, get_spec
from repro.workloads.values import VALUE_CLASSES

_TUPLE_FIELDS = ("stream_strides", "value_mix")


def spec_to_dict(spec: WorkloadSpec) -> Dict:
    data = dataclasses.asdict(spec)
    for field in _TUPLE_FIELDS:
        data[field] = [list(pair) for pair in data[field]]
    return data


def spec_from_dict(data: Dict) -> WorkloadSpec:
    kwargs = dict(data)
    for field in _TUPLE_FIELDS:
        if field in kwargs:
            kwargs[field] = tuple((item[0], item[1]) for item in kwargs[field])
    unknown = set(kwargs) - {f.name for f in dataclasses.fields(WorkloadSpec)}
    if unknown:
        raise ValueError(f"unknown workload fields: {sorted(unknown)}")
    return WorkloadSpec(**kwargs)


def save_spec(spec: WorkloadSpec, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(spec_to_dict(spec), indent=2))


def load_spec(path: Union[str, Path]) -> WorkloadSpec:
    return spec_from_dict(json.loads(Path(path).read_text()))


def derive(base: Union[str, WorkloadSpec], **overrides) -> WorkloadSpec:
    """A registered (or given) spec with fields overridden.

    >>> big_zeus = derive("zeus", name="zeus-5x", ws_factor=5.0)
    """
    spec = get_spec(base) if isinstance(base, str) else base
    return dataclasses.replace(spec, **overrides)


def register(spec: WorkloadSpec, *, overwrite: bool = False) -> WorkloadSpec:
    """Add a spec to the global registry (so CLI/benches can name it)."""
    if spec.name in WORKLOADS and not overwrite:
        raise ValueError(f"workload {spec.name!r} already registered")
    WORKLOADS[spec.name] = spec
    return spec


class WorkloadBuilder:
    """Guided construction of a synthetic workload.

    >>> spec = (WorkloadBuilder("myapp")
    ...         .footprint(ws_factor=2.5, locality=1.8)
    ...         .streaming(fraction=0.3, length=20, strides=((1, 0.8), (4, 0.2)))
    ...         .instruction_mix(footprint_factor=4.0, instr_per_event=35.0)
    ...         .sharing(shared_fraction=0.1, store_fraction=0.2)
    ...         .values(("byte_text", 0.5), ("random", 0.5))
    ...         .core(tolerance=0.3)
    ...         .build())
    """

    def __init__(self, name: str) -> None:
        # Start from a neutral mid-point; every axis can be overridden.
        self._fields: Dict = dict(
            name=name,
            ws_factor=2.0,
            locality=1.8,
            stride_fraction=0.3,
            stream_length=32,
            stream_strides=((1, 1.0),),
            streams_per_core=4,
            store_fraction=0.2,
            shared_fraction=0.1,
            i_footprint_l1i_factor=2.0,
            i_jump_prob=0.2,
            i_locality=2.0,
            instr_per_event=35.0,
            tolerance=0.35,
            cpi_base=1.0,
            value_mix=(("small_int", 0.5), ("random", 0.5)),
            description=f"custom workload {name!r}",
        )

    def footprint(self, *, ws_factor: float, locality: float,
                  hot_fraction: float = None, hot_l1d_factor: float = None) -> "WorkloadBuilder":
        self._fields.update(ws_factor=ws_factor, locality=locality)
        if hot_fraction is not None:
            self._fields["hot_fraction"] = hot_fraction
        if hot_l1d_factor is not None:
            self._fields["hot_l1d_factor"] = hot_l1d_factor
        return self

    def streaming(self, *, fraction: float, length: int, strides=None,
                  streams_per_core: int = None) -> "WorkloadBuilder":
        self._fields.update(stride_fraction=fraction, stream_length=length)
        if strides is not None:
            self._fields["stream_strides"] = tuple(strides)
        if streams_per_core is not None:
            self._fields["streams_per_core"] = streams_per_core
        return self

    def instruction_mix(self, *, footprint_factor: float, instr_per_event: float,
                        jump_prob: float = None) -> "WorkloadBuilder":
        self._fields.update(
            i_footprint_l1i_factor=footprint_factor, instr_per_event=instr_per_event
        )
        if jump_prob is not None:
            self._fields["i_jump_prob"] = jump_prob
        return self

    def sharing(self, *, shared_fraction: float, store_fraction: float) -> "WorkloadBuilder":
        self._fields.update(shared_fraction=shared_fraction, store_fraction=store_fraction)
        return self

    def values(self, *mix) -> "WorkloadBuilder":
        for name, _ in mix:
            if name not in VALUE_CLASSES:
                raise ValueError(f"unknown value class {name!r}")
        self._fields["value_mix"] = tuple(mix)
        return self

    def core(self, *, tolerance: float, cpi_base: float = None) -> "WorkloadBuilder":
        self._fields["tolerance"] = tolerance
        if cpi_base is not None:
            self._fields["cpi_base"] = cpi_base
        return self

    def build(self) -> WorkloadSpec:
        return WorkloadSpec(**self._fields)
