"""Linked-data heap model and the pointer-chasing workload.

The synthetic generators in :mod:`repro.workloads.base` cover strided,
hot-set and heavy-tailed irregular traffic, but none of it is *content
directed*: the next address never depends on the bytes of the last line.
Linked data structures (lists, trees, hash chains) are exactly that, and
they are the case stride prefetchers cannot touch — the motivation for
content-directed pointer-chase prefetching (Srivastava & Navalakha,
arXiv:1801.08088).

:class:`HeapModel` is a deterministic graph of fixed-size nodes laid out
in a dedicated line-address region.  Each node's first line physically
embeds the byte addresses of its ``out_degree`` successors as aligned
64-bit big-endian words; the remaining words (and any payload lines) are
small filler values.  The same object serves three consumers:

* the trace generator walks ``successor()`` edges to produce the access
  stream,
* the value model returns ``line_words()`` so the compressor sizes the
  *actual* pointer bytes, and
* the pointer-chase prefetcher scans those same words for heap-region
  addresses on every demand fill.

Successors are a mix-hash of (node, slot, seed) within a forward
``window``, so the chase wanders the whole heap with tunable spatial
locality and no RNG state of its own — both engines and the oracle see
the identical graph.
"""

from __future__ import annotations

from typing import Dict, List

from repro.params import LINE_BYTES
from repro.workloads.base import WorkloadSpec

# Line-address base of the heap region: disjoint from the instruction,
# shared and private regions of repro.workloads.base, offset by a prime
# so heap lines spread over L2 sets like the other regions do.
HEAP_BASE = (4 << 40) + 122949823

_MASK64 = (1 << 64) - 1
_WORDS_PER_LINE = LINE_BYTES // 4


class HeapModel:
    """A deterministic linked-node heap in its own address region."""

    def __init__(
        self,
        nodes: int = 4096,
        node_lines: int = 1,
        out_degree: int = 2,
        window: int = 64,
        seed: int = 0,
    ) -> None:
        if nodes < 2:
            raise ValueError("heap needs at least 2 nodes")
        if node_lines < 1:
            raise ValueError("node_lines must be positive")
        if not 1 <= out_degree <= 7:
            raise ValueError("out_degree must be in 1..7 (pointers live in one line)")
        if window < 1:
            raise ValueError("successor window must be positive")
        self.nodes = nodes
        self.node_lines = node_lines
        self.out_degree = out_degree
        self.window = window
        self.seed = seed
        self.base = HEAP_BASE
        self.total_lines = nodes * node_lines
        self._line_cache: Dict[int, List[int]] = {}

    @classmethod
    def from_spec(cls, spec: WorkloadSpec, seed: int = 0) -> "HeapModel":
        return cls(
            nodes=spec.heap_nodes,
            node_lines=spec.heap_node_lines,
            out_degree=spec.heap_out_degree,
            window=spec.heap_window,
            seed=seed,
        )

    # -- address geometry ---------------------------------------------------

    def contains(self, line_addr: int) -> bool:
        return self.base <= line_addr < self.base + self.total_lines

    def node_line(self, node: int) -> int:
        """The node's first line — the one carrying its pointers."""
        return self.base + (node % self.nodes) * self.node_lines

    # -- graph structure ----------------------------------------------------

    def _mix(self, a: int, b: int) -> int:
        # splitmix64-style finalizer over (a, b, seed): cheap, stateless,
        # and identical however the heap is traversed.
        x = (
            a * 0x9E3779B97F4A7C15
            + b * 0xBF58476D1CE4E5B9
            + self.seed * 0x94D049BB133111EB
        ) & _MASK64
        x ^= x >> 31
        x = (x * 0xD6E8FEB86659FD93) & _MASK64
        x ^= x >> 27
        return x

    def successor(self, node: int, slot: int) -> int:
        """Successor node for one outgoing pointer slot: a forward step of
        1..window, wrapping, so chains cover the heap without cycles of
        trivial length."""
        step = 1 + self._mix(node, slot) % self.window
        return (node + step) % self.nodes

    # -- line contents ------------------------------------------------------

    def line_words(self, line_addr: int) -> List[int]:
        """The 16 big-endian 32-bit words stored at a heap line.

        A node's first line holds its successors' *byte* addresses as
        aligned (high word, low word) pairs in slots 0..out_degree-1;
        everything else is filler below 2**14, far below any heap line's
        high word, so no filler pair can masquerade as a pointer.
        """
        if not self.contains(line_addr):
            raise ValueError(f"line {line_addr:#x} is outside the heap")
        cached = self._line_cache.get(line_addr)
        if cached is None:
            offset = line_addr - self.base
            node, line_in_node = divmod(offset, self.node_lines)
            words = [self._mix(offset, 0x40 + i) & 0x3FFF for i in range(_WORDS_PER_LINE)]
            if line_in_node == 0:
                for slot in range(self.out_degree):
                    target = self.node_line(self.successor(node, slot)) * LINE_BYTES
                    words[2 * slot] = target >> 32
                    words[2 * slot + 1] = target & 0xFFFFFFFF
            cached = self._line_cache[line_addr] = words
        return list(cached)


# The linked-data workload: a pointer-chasing benchmark in the style of
# the commercial specs.  Half the data traffic walks the heap graph; the
# rest is the usual hot-set / heavy-tail mixture, so caches still see
# ordinary reuse alongside the chains.
CHASE = WorkloadSpec(
    name="chase",
    ws_factor=2.0,
    locality=1.8,
    stride_fraction=0.06,
    stream_length=8,
    stream_strides=((1, 0.7), (2, 0.2), (-1, 0.1)),
    streams_per_core=2,
    store_fraction=0.12,
    shared_fraction=0.10,
    i_footprint_l1i_factor=2.0,
    i_jump_prob=0.25,
    i_locality=2.5,
    instr_per_event=45.0,
    tolerance=0.25,
    cpi_base=1.0,
    value_mix=(
        ("pointer", 0.38),
        ("near_zero", 0.14),
        ("int64", 0.16),
        ("small_int", 0.12),
        ("random", 0.20),
    ),
    hot_fraction=0.24,
    hot_l1d_factor=0.5,
    pointer_fraction=0.50,
    heap_nodes=4096,
    heap_node_lines=2,
    heap_out_degree=2,
    heap_window=64,
    description="pointer-chasing linked lists/trees over a 4K-node heap",
)

LINKED = (CHASE,)
