"""Trace event types, workload specs, and the per-core trace generator.

Each trace event is one *line-touching* memory access: ``(instr_gap,
kind, line_addr)``, meaning the core executes ``instr_gap`` instructions
(which includes all the same-line accesses that trivially hit the L1)
and then touches a new-to-the-pipeline cache line.  This filtered-trace
representation is what lets a Python simulator cover billions of
simulated instructions: the instruction gap carries the cheap work, the
events carry everything the memory system cares about.

The generator composes four behaviours whose proportions define a
workload:

* **instruction fetch** — the PC walks sequential code lines inside an
  instruction footprint, jumping with ``i_jump_prob`` per data event to a
  locality-weighted target (commercial codes: multi-hundred-KB
  footprints that miss the L1I; SPEComp loops: a few lines that never do);
* **strided streams** — ``streams_per_core`` active streams walk the
  private region with strides drawn from ``stream_strides`` for
  ``stream_length`` lines before re-seeding (long streams ⇒ accurate
  prefetching, short streams ⇒ 25-deep startup overshoot, the paper's
  jbb problem);
* **irregular accesses** — locality-weighted (heavy-tail) references to
  the private or shared region (``idx = N·u^locality``: larger exponent
  ⇒ hotter head, higher cache hit rates);
* **pointer chases** — ``pointer_fraction`` of data accesses walk a
  shared :class:`~repro.workloads.linked.HeapModel` graph, each access
  landing on the line whose bytes named it (content-directed traffic the
  stride prefetchers cannot predict);
* **stores** — a fraction of data accesses write, driving MSI upgrades
  and invalidations in the shared region.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

IFETCH, LOAD, STORE = 0, 1, 2

# Disjoint line-address regions (line addresses, i.e. byte addr >> 6).
# The per-core spacing includes a large prime so different cores' private
# regions land at different L2 set offsets — a power-of-two spacing would
# alias every core's region onto the same sets and waste half the cache.
_I_BASE = (1 << 40) + 104729
_SHARED_BASE = (2 << 40) + 15485863
_PRIVATE_BASE = 3 << 40
_PRIVATE_STRIDE = (1 << 36) + 32452843  # per-core private region spacing

_INSTR_PER_LINE = 16  # 64-byte line / 4-byte instructions


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that distinguishes one benchmark from another.

    Footprints are expressed relative to cache capacities so the same
    spec drives full-scale and scaled-down systems with identical
    capacity ratios (see DESIGN.md's substitution table).
    """

    name: str
    # data footprint
    ws_factor: float  # total data region / L2 uncompressed lines
    locality: float  # heavy-tail exponent for irregular accesses (>=1)
    # strided streams
    stride_fraction: float
    stream_length: int
    stream_strides: Tuple[Tuple[int, float], ...]
    streams_per_core: int
    # access mix
    store_fraction: float
    shared_fraction: float  # prob. an irregular access targets shared data
    # instruction stream
    i_footprint_l1i_factor: float  # instruction footprint / L1I lines
    i_jump_prob: float
    i_locality: float
    instr_per_event: float
    # core model
    tolerance: float
    cpi_base: float
    # data compressibility
    value_mix: Tuple[Tuple[str, float], ...]
    description: str = ""
    # per-core hot set: the stack/heap-top slice that gives real programs
    # their high L1 hit rates, decoupling L1 locality from L2 capacity
    # behaviour.  Accessed uniformly; part of the private region.
    hot_fraction: float = 0.45
    hot_l1d_factor: float = 0.5  # hot-set size / L1D lines
    # linked-data heap (repro.workloads.linked): fraction of data accesses
    # that chase pointers through it, and its geometry.  All-zero defaults
    # keep the heap (and its RNG draws) completely out of the trace.
    pointer_fraction: float = 0.0
    heap_nodes: int = 4096
    heap_node_lines: int = 1
    heap_out_degree: int = 2
    heap_window: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.stride_fraction <= 1.0:
            raise ValueError("stride_fraction must be in [0, 1]")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        if self.locality < 1.0 or self.i_locality < 1.0:
            raise ValueError("locality exponents must be >= 1")
        if self.stream_length < 1 or self.streams_per_core < 1:
            raise ValueError("streams must have positive length and count")
        if self.instr_per_event <= 0:
            raise ValueError("instr_per_event must be positive")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if not 0.0 <= self.pointer_fraction <= 1.0:
            raise ValueError("pointer_fraction must be in [0, 1]")
        if self.stride_fraction + self.hot_fraction + self.pointer_fraction > 1.0:
            raise ValueError(
                "stride_fraction + hot_fraction + pointer_fraction must not exceed 1"
            )
        if self.pointer_fraction > 0:
            # Heap geometry only matters when the heap is walked; the
            # HeapModel re-validates, but fail early with the spec name.
            if self.heap_nodes < 2 or self.heap_node_lines < 1:
                raise ValueError("heap needs >= 2 nodes of >= 1 line")
            if not 1 <= self.heap_out_degree <= 7 or self.heap_window < 1:
                raise ValueError("heap_out_degree must be 1..7 and heap_window >= 1")


class _StreamState:
    __slots__ = ("pos", "stride", "remaining")

    def __init__(self) -> None:
        self.pos = 0
        self.stride = 1
        self.remaining = 0


class TraceGenerator:
    """Per-core, seeded, infinite event stream for one workload."""

    def __init__(
        self,
        spec: WorkloadSpec,
        core_id: int,
        n_cores: int,
        l2_lines: int,
        l1i_lines: int,
        seed: int = 0,
        heap=None,
    ) -> None:
        if not 0 <= core_id < n_cores:
            raise ValueError("core_id out of range")
        self.spec = spec
        self.core_id = core_id
        self.n_cores = n_cores
        self.rng = random.Random((seed * 1_000_003 + core_id) ^ 0xC0FFEE)

        total_data = max(int(spec.ws_factor * l2_lines), n_cores * 64)
        self.shared_lines = max(int(total_data * spec.shared_fraction), 16)
        self.private_lines = max((total_data - self.shared_lines) // n_cores, 64)
        self.private_base = _PRIVATE_BASE + core_id * _PRIVATE_STRIDE
        self.hot_lines = max(min(int(spec.hot_l1d_factor * l1i_lines),
                                 self.private_lines // 2), 8)
        self.i_lines = max(int(spec.i_footprint_l1i_factor * l1i_lines), 4)

        if heap is None and spec.pointer_fraction > 0:
            from repro.workloads.linked import HeapModel

            heap = HeapModel.from_spec(spec, seed=seed)
        self.heap = heap
        # Each core starts its chase at its own slice of the heap; the walk
        # itself is heap-deterministic, only slot choice draws RNG.
        self._chase_node = (core_id * heap.nodes) // n_cores if heap is not None else 0

        self._pc_line = 0  # line offset within the instruction footprint
        self._instr_into_line = 0
        self._stride_choices = [s for s, _ in spec.stream_strides]
        self._stride_weights = [w for _, w in spec.stream_strides]
        self._streams = [self._seed_stream(_StreamState()) for _ in range(spec.streams_per_core)]
        # Events drawn but not yet emitted by fill_chunk (a chunk boundary
        # can land mid-way through a step's pending instruction fetches).
        self._chunk_pending: List[Tuple[int, int, int]] = []

    # -- public -------------------------------------------------------------

    def events(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (instr_gap, kind, line_addr) forever.

        The loop body runs once per trace event, so the spec scalars and
        PC-walk state are held in locals; the RNG call sequence is
        identical to the straightforward formulation.
        """
        rng = self.rng
        spec = self.spec
        random_ = rng.random
        expovariate = rng.expovariate
        jump_prob = spec.i_jump_prob
        i_locality = spec.i_locality
        store_fraction = spec.store_fraction
        i_lines = self.i_lines
        mean = spec.instr_per_event
        rate = 1.0 / mean if mean > 1 else 0.0
        # _data_address, inlined below with the same RNG call sequence.
        stride_fraction = spec.stride_fraction
        stride_or_hot = spec.stride_fraction + spec.hot_fraction
        hot_or_pointer = stride_or_hot + spec.pointer_fraction
        shared_fraction = spec.shared_fraction
        locality = spec.locality
        shared_lines = self.shared_lines
        private_lines = self.private_lines
        private_base = self.private_base
        hot_lines = self.hot_lines
        heap = self.heap
        chase_node = self._chase_node
        randrange = rng.randrange
        stream_address = self._stream_address
        pc_line = self._pc_line
        instr_into_line = self._instr_into_line
        pending: List[Tuple[int, int, int]] = []
        append = pending.append
        pop = pending.pop
        while True:
            while pending:
                yield pop()
            # Geometric-ish gap with the configured mean, at least 1.
            gap = 1 + int(expovariate(rate)) if rate else 1
            # Instruction-side: advance the PC, jump occasionally, emit an
            # IFETCH for every new code line entered.
            if random_() < jump_prob:
                pc_line = int(i_lines * (random_() ** i_locality))
                instr_into_line = 0
                append((0, IFETCH, _I_BASE + pc_line))
            instr_into_line += gap
            crossed = instr_into_line // _INSTR_PER_LINE
            if crossed:
                instr_into_line %= _INSTR_PER_LINE
                # Emit at most 2 fetch events per gap; a long sequential run
                # touches each line once, and the gap rarely spans more.
                for i in range(min(crossed, 2)):
                    pc_line = (pc_line + 1) % i_lines
                    append((0, IFETCH, _I_BASE + pc_line))
            # Data-side: one access per step (_data_address, inlined).
            r = random_()
            if r < stride_fraction:
                addr = stream_address()
            elif r < stride_or_hot:
                addr = private_base + randrange(hot_lines)
            elif r < hot_or_pointer:
                node = chase_node
                chase_node = heap.successor(node, randrange(heap.out_degree))
                addr = heap.node_line(node) + randrange(heap.node_lines)
            elif random_() < shared_fraction:
                addr = _SHARED_BASE + int(shared_lines * (random_() ** locality))
            else:
                addr = private_base + int(private_lines * (random_() ** locality))
            kind = STORE if random_() < store_fraction else LOAD
            yield (gap, kind, addr)

    def fill_chunk(
        self,
        gaps: List[int],
        kinds: List[int],
        addrs: List[int],
        n: int,
    ) -> None:
        """Append exactly ``n`` events to three parallel lists.

        This is the fast engine's vectorized event source: one call
        amortises the spec/RNG local binding over thousands of events and
        hands the kernel plain lists instead of a generator to resume per
        event.  The loop body, the RNG call sequence, and the emission
        order (each step's data event first, then its pending instruction
        fetches in LIFO order) are identical to :meth:`events` — the
        engine-equivalence suite pins this bit-exactly.

        Unlike :meth:`events`, the PC-walk state is persisted back to the
        instance (and a chunk boundary mid-step parks the unemitted
        fetches in ``_chunk_pending``), so one generator must be consumed
        *either* through ``events()`` *or* through ``fill_chunk`` — never
        both; the two would share the RNG but not the walk state.
        """
        rng = self.rng
        spec = self.spec
        random_ = rng.random
        expovariate = rng.expovariate
        jump_prob = spec.i_jump_prob
        i_locality = spec.i_locality
        store_fraction = spec.store_fraction
        i_lines = self.i_lines
        mean = spec.instr_per_event
        rate = 1.0 / mean if mean > 1 else 0.0
        stride_fraction = spec.stride_fraction
        stride_or_hot = spec.stride_fraction + spec.hot_fraction
        hot_or_pointer = stride_or_hot + spec.pointer_fraction
        shared_fraction = spec.shared_fraction
        locality = spec.locality
        shared_lines = self.shared_lines
        private_lines = self.private_lines
        private_base = self.private_base
        hot_lines = self.hot_lines
        heap = self.heap
        chase_node = self._chase_node
        randrange = rng.randrange
        stream_address = self._stream_address
        pc_line = self._pc_line
        instr_into_line = self._instr_into_line
        pending = self._chunk_pending
        append = pending.append
        pop = pending.pop
        g_app = gaps.append
        k_app = kinds.append
        a_app = addrs.append
        count = 0
        while pending and count < n:
            pg, pk, pa = pop()
            g_app(pg)
            k_app(pk)
            a_app(pa)
            count += 1
        while count < n:
            gap = 1 + int(expovariate(rate)) if rate else 1
            if random_() < jump_prob:
                pc_line = int(i_lines * (random_() ** i_locality))
                instr_into_line = 0
                append((0, IFETCH, _I_BASE + pc_line))
            instr_into_line += gap
            crossed = instr_into_line // _INSTR_PER_LINE
            if crossed:
                instr_into_line %= _INSTR_PER_LINE
                for i in range(min(crossed, 2)):
                    pc_line = (pc_line + 1) % i_lines
                    append((0, IFETCH, _I_BASE + pc_line))
            r = random_()
            if r < stride_fraction:
                addr = stream_address()
            elif r < stride_or_hot:
                addr = private_base + randrange(hot_lines)
            elif r < hot_or_pointer:
                node = chase_node
                chase_node = heap.successor(node, randrange(heap.out_degree))
                addr = heap.node_line(node) + randrange(heap.node_lines)
            elif random_() < shared_fraction:
                addr = _SHARED_BASE + int(shared_lines * (random_() ** locality))
            else:
                addr = private_base + int(private_lines * (random_() ** locality))
            g_app(gap)
            k_app(STORE if random_() < store_fraction else LOAD)
            a_app(addr)
            count += 1
            while pending and count < n:
                pg, pk, pa = pop()
                g_app(pg)
                k_app(pk)
                a_app(pa)
                count += 1
        self._pc_line = pc_line
        self._instr_into_line = instr_into_line
        self._chase_node = chase_node

    def cursor_state(self) -> dict:
        """The generator's complete resumable cursor as plain data.

        Only meaningful for generators consumed through
        :meth:`fill_chunk` (chunked mode persists the PC-walk state back
        to the instance; ``events()`` keeps it in generator locals,
        which no serialization can reach).  Together with the chunk
        buffer tail held by the consuming cursor, this is everything a
        snapshot needs to continue the stream bit-identically — the
        generator never materializes more than one chunk of trace.
        """
        return {
            "rng": self.rng.getstate(),
            "pc_line": self._pc_line,
            "instr_into_line": self._instr_into_line,
            "chase_node": self._chase_node,
            "streams": [(s.pos, s.stride, s.remaining) for s in self._streams],
            "chunk_pending": list(self._chunk_pending),
        }

    def restore_cursor(self, state: dict) -> None:
        """Inverse of :meth:`cursor_state`; the generator must have been
        constructed with the same (spec, core_id, n_cores, footprints,
        seed, heap) for the restored stream to continue correctly."""
        self.rng.setstate(state["rng"])
        self._pc_line = state["pc_line"]
        self._instr_into_line = state["instr_into_line"]
        self._chase_node = state["chase_node"]
        if len(state["streams"]) != len(self._streams):
            raise ValueError(
                f"cursor has {len(state['streams'])} stream(s), "
                f"generator has {len(self._streams)}"
            )
        for stream, (pos, stride, remaining) in zip(self._streams, state["streams"]):
            stream.pos = pos
            stream.stride = stride
            stream.remaining = remaining
        self._chunk_pending = [tuple(e) for e in state["chunk_pending"]]

    # -- internals ------------------------------------------------------------

    def _draw_gap(self) -> int:
        """Geometric-ish gap with the configured mean, at least 1."""
        mean = self.spec.instr_per_event
        return 1 + int(self.rng.expovariate(1.0 / mean)) if mean > 1 else 1

    def _data_address(self) -> int:
        rng = self.rng
        spec = self.spec
        r = rng.random()
        if r < spec.stride_fraction:
            return self._stream_address()
        if r < spec.stride_fraction + spec.hot_fraction:
            return self.private_base + rng.randrange(self.hot_lines)
        if r < spec.stride_fraction + spec.hot_fraction + spec.pointer_fraction:
            heap = self.heap
            node = self._chase_node
            self._chase_node = heap.successor(node, rng.randrange(heap.out_degree))
            return heap.node_line(node) + rng.randrange(heap.node_lines)
        if rng.random() < spec.shared_fraction:
            idx = int(self.shared_lines * (rng.random() ** spec.locality))
            return _SHARED_BASE + idx
        idx = int(self.private_lines * (rng.random() ** spec.locality))
        return self.private_base + idx

    def _stream_address(self) -> int:
        stream = self._streams[self.rng.randrange(len(self._streams))]
        if stream.remaining <= 0:
            self._seed_stream(stream)
        addr = self.private_base + (stream.pos % self.private_lines)
        stream.pos += stream.stride
        stream.remaining -= 1
        return addr

    def _seed_stream(self, stream: _StreamState) -> _StreamState:
        stream.pos = self.rng.randrange(self.private_lines)
        stream.stride = self.rng.choices(self._stride_choices, self._stride_weights)[0]
        stream.remaining = self.spec.stream_length
        return stream
