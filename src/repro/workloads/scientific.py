"""The four SPEComp2001 benchmarks (Table 2), as synthetic specs.

Parameter rationale:

* Tiny instruction footprints (tight loops) give Table 4's near-zero L1I
  prefetch rates (0.04-0.06/1000 instr).
* Long strided streams give the high L1D/L2 coverage and accuracy the
  paper reports (L2: 45-92% coverage, 74-98% accuracy).
* Floating-point value mixes compress poorly (Table 3: ratios 1.01-1.19,
  "most of the benefit ... comes from compressing zeros").
* fma3d streams far beyond any cache (27.7 GB/s demand — the one
  workload where link compression alone wins big); apsi's working set
  sits exactly at the capacity knee (1% more effective capacity buys a
  5% miss reduction).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec

ART = WorkloadSpec(
    name="art",
    ws_factor=4.0,
    locality=1.15,
    stride_fraction=0.55,
    stream_length=256,
    stream_strides=((1, 0.85), (2, 0.10), (4, 0.05)),
    streams_per_core=4,
    store_fraction=0.15,
    shared_fraction=0.02,
    i_footprint_l1i_factor=0.15,
    i_jump_prob=0.10,
    i_locality=1.5,
    instr_per_event=18.0,
    tolerance=0.65,
    cpi_base=1.0,
    value_mix=(
        ("zero", 0.12),
        ("float_sparse", 0.22),
        ("float_dense", 0.58),
        ("small_int", 0.08),
    ),
    hot_fraction=0.15,
    hot_l1d_factor=0.4,
    description="art: neural-network image recognition (SPEComp)",
)

APSI = WorkloadSpec(
    name="apsi",
    ws_factor=0.92,
    locality=1.2,
    stride_fraction=0.8,
    stream_length=512,
    stream_strides=((1, 0.8), (2, 0.12), (8, 0.08)),
    streams_per_core=3,
    store_fraction=0.20,
    shared_fraction=0.02,
    i_footprint_l1i_factor=0.15,
    i_jump_prob=0.10,
    i_locality=1.5,
    instr_per_event=35.0,
    tolerance=0.75,
    cpi_base=1.0,
    value_mix=(("float_dense", 0.97), ("zero", 0.03)),
    hot_fraction=0.12,
    hot_l1d_factor=0.4,
    description="apsi: pollutant-distribution weather code (SPEComp)",
)

FMA3D = WorkloadSpec(
    name="fma3d",
    ws_factor=14.0,
    locality=1.2,
    stride_fraction=0.68,
    stream_length=160,
    stream_strides=((1, 0.6), (2, 0.15), (3, 0.10), (16, 0.15)),
    streams_per_core=5,
    store_fraction=0.25,
    shared_fraction=0.02,
    i_footprint_l1i_factor=0.2,
    i_jump_prob=0.12,
    i_locality=1.5,
    instr_per_event=10.0,
    tolerance=0.7,
    cpi_base=1.0,
    value_mix=(
        ("zero", 0.10),
        ("float_sparse", 0.25),
        ("float_dense", 0.60),
        ("small_int", 0.05),
    ),
    hot_fraction=0.12,
    hot_l1d_factor=0.4,
    description="fma3d: crash-simulation finite elements (SPEComp)",
)

MGRID = WorkloadSpec(
    name="mgrid",
    ws_factor=4.0,
    locality=1.3,
    stride_fraction=0.78,
    stream_length=384,
    stream_strides=((1, 0.55), (2, 0.20), (4, 0.15), (32, 0.10)),
    streams_per_core=4,
    store_fraction=0.18,
    shared_fraction=0.02,
    i_footprint_l1i_factor=0.15,
    i_jump_prob=0.10,
    i_locality=1.5,
    instr_per_event=18.0,
    tolerance=0.65,
    cpi_base=1.0,
    value_mix=(
        ("zero", 0.12),
        ("float_sparse", 0.20),
        ("float_dense", 0.66),
        ("small_int", 0.02),
    ),
    hot_fraction=0.12,
    hot_l1d_factor=0.4,
    description="mgrid: multi-grid solver (SPEComp)",
)

SCIENTIFIC = (ART, APSI, FMA3D, MGRID)
