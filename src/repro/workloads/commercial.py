"""The four Wisconsin commercial workloads (Table 2), as synthetic specs.

Parameter rationale (paper anchors in parentheses):

* Large instruction footprints drive the high L1I prefetch rates of
  Table 4 (oltp 13.5/1000 instr, jbb only 1.8).
* Short strided streams make the 25-deep L2 startup prefetches overshoot,
  producing the paper's low commercial L2 accuracy (32-58%) — worst for
  jbb, whose 32% accuracy and near-capacity working set cause the -25%
  prefetching slowdown.
* Working sets sit 1.8-2.5x above L2 capacity with heavy-tailed reuse, so
  compression's extra effective capacity converts directly into the
  10-23% miss reductions of Figure 3.
* Value mixes are integer/pointer/text-heavy, giving Table 3's 1.4-1.8
  compression ratios.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec

APACHE = WorkloadSpec(
    name="apache",
    ws_factor=3.0,
    locality=1.8,
    stride_fraction=0.28,
    stream_length=10,
    stream_strides=((1, 0.5), (2, 0.2), (-1, 0.15), (5, 0.15)),
    streams_per_core=4,
    store_fraction=0.22,
    shared_fraction=0.15,
    i_footprint_l1i_factor=6.0,
    i_jump_prob=0.30,
    i_locality=2.5,
    instr_per_event=40.0,
    tolerance=0.25,
    cpi_base=1.0,
    value_mix=(
        ("zero", 0.10),
        ("near_zero", 0.10),
        ("byte_text", 0.28),
        ("small_int", 0.12),
        ("pointer", 0.20),
        ("random", 0.20),
    ),
    hot_fraction=0.42,
    hot_l1d_factor=0.5,
    description="Apache 2.0 static web serving (SURGE clients)",
)

ZEUS = WorkloadSpec(
    name="zeus",
    ws_factor=2.8,
    locality=1.8,
    stride_fraction=0.34,
    stream_length=32,
    stream_strides=((1, 0.75), (2, 0.12), (-1, 0.08), (8, 0.05)),
    streams_per_core=4,
    store_fraction=0.18,
    shared_fraction=0.12,
    i_footprint_l1i_factor=5.0,
    i_jump_prob=0.28,
    i_locality=2.5,
    instr_per_event=40.0,
    tolerance=0.30,
    cpi_base=1.0,
    value_mix=(
        ("zero", 0.08),
        ("near_zero", 0.10),
        ("byte_text", 0.26),
        ("small_int", 0.10),
        ("pointer", 0.22),
        ("random", 0.24),
    ),
    hot_fraction=0.40,
    hot_l1d_factor=0.5,
    description="Zeus event-driven web server, same data as apache",
)

OLTP = WorkloadSpec(
    name="oltp",
    ws_factor=3.2,
    locality=1.6,
    stride_fraction=0.12,
    stream_length=12,
    stream_strides=((1, 0.6), (-1, 0.15), (3, 0.15), (7, 0.10)),
    streams_per_core=3,
    store_fraction=0.28,
    shared_fraction=0.20,
    i_footprint_l1i_factor=10.0,
    i_jump_prob=0.35,
    i_locality=2.0,
    instr_per_event=55.0,
    tolerance=0.20,
    cpi_base=1.0,
    value_mix=(
        ("zero", 0.14),
        ("int64", 0.26),
        ("tiny_int", 0.12),
        ("small_int", 0.14),
        ("byte_text", 0.14),
        ("pointer", 0.10),
        ("random", 0.10),
    ),
    hot_fraction=0.45,
    hot_l1d_factor=0.5,
    description="TPC-C on DB2, 16 users/processor",
)

JBB = WorkloadSpec(
    name="jbb",
    ws_factor=2.4,
    locality=1.8,
    stride_fraction=0.28,
    stream_length=6,
    stream_strides=((1, 0.7), (2, 0.15), (-1, 0.15)),
    streams_per_core=4,
    store_fraction=0.25,
    shared_fraction=0.08,
    i_footprint_l1i_factor=1.5,
    i_jump_prob=0.25,
    i_locality=2.5,
    instr_per_event=45.0,
    tolerance=0.25,
    cpi_base=1.0,
    value_mix=(
        ("zero", 0.08),
        ("near_zero", 0.08),
        ("int64", 0.12),
        ("small_int", 0.10),
        ("pointer", 0.34),
        ("random", 0.28),
    ),
    hot_fraction=0.42,
    hot_l1d_factor=0.5,
    description="SPECjbb2000 on HotSpot JVM, 1.5 warehouses/processor",
)

COMMERCIAL = (APACHE, ZEUS, OLTP, JBB)
