"""Data-value models: generate real 64-byte line contents per workload.

FPC's benefit depends entirely on what the bytes look like, so instead of
assigning compression ratios by fiat we generate *concrete word values*
from distributions that mimic each benchmark's data (database records
full of small integers and 64-bit counters, web-server buffers of
text-like bytes, pointer-rich Java heaps, dense floating-point arrays)
and let the real FPC encoder decide how many segments each line needs.

Lines are drawn from a fixed per-workload pool (default 1024 lines) and
mapped to addresses by a multiplicative hash, so a given address always
has the same contents and the resident mix matches the global mix.

Linked-data workloads overlay a :class:`~repro.workloads.linked.HeapModel`
on top of the pool: addresses inside the heap region return the heap's
actual node lines (embedded successor pointers and all), sized by the
active scheme on demand, so the pointer-chase prefetcher and the
compressor both see the same concrete bytes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.compression.fpc import WORDS_PER_LINE, sizes_for
from repro.compression.fpc import compressed_size_bytes as fpc_size_bytes
from repro.compression.segments import segments_for_size
from repro.params import LINE_BYTES

_WordGen = Callable[[random.Random], List[int]]
_MASK32 = 0xFFFFFFFF


def _zero_line(rng: random.Random) -> List[int]:
    """Zero-initialised / sparse data — FPC's best case."""
    return [0] * WORDS_PER_LINE


def _near_zero_line(rng: random.Random) -> List[int]:
    """Mostly zero with a couple of small values (sparse structs)."""
    words = [0] * WORDS_PER_LINE
    for _ in range(rng.randint(1, 3)):
        words[rng.randrange(WORDS_PER_LINE)] = rng.randint(1, 100)
    return words


def _tiny_int_line(rng: random.Random) -> List[int]:
    """Flags and enums: values fitting 4-bit sign extension."""
    return [rng.randint(-8, 7) & _MASK32 for _ in range(WORDS_PER_LINE)]


def _small_int_line(rng: random.Random) -> List[int]:
    """Counters and small quantities: 8-bit sign-extendable words."""
    return [rng.randint(-128, 127) & _MASK32 for _ in range(WORDS_PER_LINE)]


def _half_int_line(rng: random.Random) -> List[int]:
    """16-bit quantities (lengths, ids)."""
    return [rng.randint(-32768, 32767) & _MASK32 for _ in range(WORDS_PER_LINE)]


def _byte_text_line(rng: random.Random) -> List[int]:
    """Text-ish buffers: repeated bytes and small byte values."""
    words = []
    for _ in range(WORDS_PER_LINE):
        if rng.random() < 0.5:
            b = rng.randrange(256)
            words.append(b * 0x01010101)
        else:
            words.append(rng.randint(0, 127))
    return words


def _int64_line(rng: random.Random) -> List[int]:
    """Small 64-bit integers: (zero high word, small low word) pairs."""
    words = []
    for _ in range(WORDS_PER_LINE // 2):
        words.append(0)
        words.append(rng.randint(0, 4000))
    return words


def _pointer_line(rng: random.Random) -> List[int]:
    """64-bit heap pointers: small high word, random-looking low word."""
    words = []
    for _ in range(WORDS_PER_LINE // 2):
        words.append(rng.randint(0, 255))  # high word: 8-bit sign-extendable
        words.append(rng.getrandbits(32))  # low word: incompressible
    return words


def _random_line(rng: random.Random) -> List[int]:
    """Uniformly random words — incompressible."""
    return [rng.getrandbits(32) for _ in range(WORDS_PER_LINE)]


def _float_dense_line(rng: random.Random) -> List[int]:
    """Dense FP data: random mantissas, FPC finds nothing (the paper's
    'lossless compression of floating-point data remains a hard problem')."""
    return [rng.getrandbits(32) | 0x00800000 for _ in range(WORDS_PER_LINE)]


def _float_sparse_line(rng: random.Random) -> List[int]:
    """FP arrays with zero elements mixed in ('most of the benefit for
    floating-point applications comes from compressing zeros')."""
    return [
        0 if rng.random() < 0.4 else rng.getrandbits(32) | 0x00800000
        for _ in range(WORDS_PER_LINE)
    ]


VALUE_CLASSES: Dict[str, _WordGen] = {
    "zero": _zero_line,
    "near_zero": _near_zero_line,
    "tiny_int": _tiny_int_line,
    "small_int": _small_int_line,
    "half_int": _half_int_line,
    "byte_text": _byte_text_line,
    "int64": _int64_line,
    "pointer": _pointer_line,
    "random": _random_line,
    "float_dense": _float_dense_line,
    "float_sparse": _float_sparse_line,
}


class ValueModel:
    """Address -> line contents (and FPC segment count) for one workload."""

    def __init__(
        self,
        mix: Sequence[Tuple[str, float]],
        seed: int = 0,
        pool_size: int = 1024,
        scheme: str = "fpc",
        heap=None,
    ) -> None:
        if not mix:
            raise ValueError("value mix must not be empty")
        total = sum(w for _, w in mix)
        if total <= 0:
            raise ValueError("value mix weights must sum to a positive value")
        for name, _ in mix:
            if name not in VALUE_CLASSES:
                raise ValueError(f"unknown value class: {name!r}")
        rng = random.Random(seed ^ 0x5EED)
        self.mix = tuple(mix)
        self.pool_size = pool_size
        self.scheme_name = scheme
        self._lines: List[List[int]] = []
        classes = [name for name, _ in mix]
        weights = [w / total for _, w in mix]
        for _ in range(pool_size):
            name = rng.choices(classes, weights=weights)[0]
            self._lines.append(VALUE_CLASSES[name](rng))
        if scheme == "fpc":
            # Batched FPC sizing: one pass over the pool with per-word
            # classification memoised (repro.compression.fpc.sizes_for).
            self._segments = [
                segments_for_size(b) for b in sizes_for(self._lines)
            ]
            self._segments_fn = lambda words: segments_for_size(
                min(fpc_size_bytes(words), LINE_BYTES)
            )
        elif scheme == "bdi":
            # Batched BDI sizing: distinct lines classified once
            # (repro.compression.bdi.sizes_for deduplicates whole lines).
            from repro.compression.bdi import sizes_for as bdi_sizes_for
            from repro.compression.bdi import compressed_size_bytes as bdi_size_bytes

            self._segments = [
                segments_for_size(b) for b in bdi_sizes_for(self._lines)
            ]
            self._segments_fn = lambda words: segments_for_size(
                min(bdi_size_bytes(words), LINE_BYTES)
            )
        else:
            from repro.compression.schemes import build_scheme

            built = build_scheme(scheme, sample_lines=self._lines)
            self._segments = [built.segments(w) for w in self._lines]
            self._segments_fn = built.segments
        self.heap = heap
        self._heap_segments: Dict[int, int] = {}

    def _build_segments_fn(self) -> Callable[[List[int]], int]:
        """The on-demand line sizer for the active scheme.

        Deterministic given ``scheme_name`` and the (already generated)
        line pool, so a pickled model rebuilds an identical function —
        the sizer itself is a local closure and cannot be pickled.
        """
        scheme = self.scheme_name
        if scheme == "fpc":
            return lambda words: segments_for_size(
                min(fpc_size_bytes(words), LINE_BYTES)
            )
        if scheme == "bdi":
            from repro.compression.bdi import compressed_size_bytes as bdi_size_bytes

            return lambda words: segments_for_size(
                min(bdi_size_bytes(words), LINE_BYTES)
            )
        from repro.compression.schemes import build_scheme

        return build_scheme(scheme, sample_lines=self._lines).segments

    def __getstate__(self) -> Dict:
        # The segment sizer closes over scheme helpers; drop it and
        # rebuild on restore (simulator snapshots pickle this model).
        state = self.__dict__.copy()
        state["_segments_fn"] = None
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._segments_fn = self._build_segments_fn()

    def _index(self, line_addr: int) -> int:
        # Knuth multiplicative hash keeps pool selection uncorrelated with
        # set indexing (which uses low address bits).
        return (line_addr * 2654435761 >> 7) % self.pool_size

    def segments_for(self, line_addr: int) -> int:
        """Segment count (1-8) for the line at this address."""
        heap = self.heap
        if heap is not None and heap.contains(line_addr):
            segments = self._heap_segments.get(line_addr)
            if segments is None:
                segments = self._segments_fn(heap.line_words(line_addr))
                self._heap_segments[line_addr] = segments
            return segments
        return self._segments[self._index(line_addr)]

    def line_words(self, line_addr: int) -> List[int]:
        heap = self.heap
        if heap is not None and heap.contains(line_addr):
            return heap.line_words(line_addr)
        return list(self._lines[self._index(line_addr)])

    def average_segments(self) -> float:
        return sum(self._segments) / len(self._segments)

    def expected_compression_ratio(self) -> float:
        """Upper-bound cache expansion if residency matched the pool mix:
        min(8 / avg_segments, 2) — 2 is the 8-tags-over-4-lines tag limit."""
        return min(8.0 / self.average_segments(), 2.0)
