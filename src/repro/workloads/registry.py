"""Workload registry: names -> specs, in the paper's presentation order."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadSpec
from repro.workloads.commercial import COMMERCIAL
from repro.workloads.linked import LINKED
from repro.workloads.scientific import SCIENTIFIC

WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (*COMMERCIAL, *SCIENTIFIC, *LINKED)
}


def commercial_names() -> List[str]:
    return [spec.name for spec in COMMERCIAL]


def scientific_names() -> List[str]:
    return [spec.name for spec in SCIENTIFIC]


def all_names() -> List[str]:
    return list(WORKLOADS)


def get_spec(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {', '.join(WORKLOADS)}"
        ) from None
