"""Segment accounting for the decoupled variable-segment cache.

The compressed L2 divides each set's data space into 8-byte segments.
An uncompressed 64-byte line occupies 8 segments; a compressed line
occupies ``ceil(fpc_bytes / 8)`` segments, between 1 and 7.  Lines whose
FPC encoding would still need 8 or more segments are stored uncompressed
(and skip the decompression penalty on hits) — the paper's "uncompressed
L2 lines may bypass the decompression pipeline".
"""

from __future__ import annotations

from typing import Sequence

from repro.compression.fpc import compressed_size_bytes
from repro.params import SEGMENT_BYTES, SEGMENTS_PER_LINE


def segments_for_size(compressed_bytes: int) -> int:
    """Segments occupied by a line whose FPC encoding is ``compressed_bytes``.

    Returns a value in [1, 8]; 8 means the line is stored uncompressed.
    """
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    segments = (compressed_bytes + SEGMENT_BYTES - 1) // SEGMENT_BYTES
    return min(segments, SEGMENTS_PER_LINE)


def segments_for_line(words: Sequence[int]) -> int:
    """Segments occupied by a concrete 16-word line under FPC."""
    return segments_for_size(compressed_size_bytes(words))


def is_stored_compressed(segments: int) -> bool:
    """A line pays the decompression penalty iff it was actually packed."""
    if not 1 <= segments <= SEGMENTS_PER_LINE:
        raise ValueError(f"segment count out of range: {segments}")
    return segments < SEGMENTS_PER_LINE
