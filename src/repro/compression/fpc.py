"""Frequent Pattern Compression (FPC).

FPC (Alameldeen & Wood, UW-Madison TR-1500 / ISCA'04) compresses a cache
line one 32-bit word at a time.  Each word is emitted as a 3-bit prefix
plus a variable-size payload chosen from seven frequent patterns; a word
matching none is stored verbatim.  Runs of zero words (up to 7) collapse
into a single prefix + 3-bit run length.

The patterns, in matching priority order:

====== ============================== ============
prefix pattern                        payload bits
====== ============================== ============
000    zero-word run (1-7 words)      3
001    4-bit sign-extended            4
010    8-bit sign-extended            8
011    16-bit sign-extended           16
100    halfword padded with zeros     16
       (low halfword all zero)
101    two halfwords, each a          16
       sign-extended byte
110    word of repeated bytes         8
111    uncompressible word            32
====== ============================== ============

This module provides bit-exact size accounting and a round-trip check
used by the property tests; the simulator only consumes sizes (via
:mod:`repro.compression.segments`) because timing, not payload identity,
is what the paper measures.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

PREFIX_BITS = 3
WORD_BITS = 32
WORDS_PER_LINE = 16  # 64-byte line / 4-byte words

# (name, payload_bits) indexed by prefix value.
FPC_PATTERNS: Tuple[Tuple[str, int], ...] = (
    ("zero_run", 3),
    ("sign_ext_4", 4),
    ("sign_ext_8", 8),
    ("sign_ext_16", 16),
    ("halfword_zero_padded", 16),
    ("two_sign_ext_halfwords", 16),
    ("repeated_bytes", 8),
    ("uncompressed", 32),
)

_MASK32 = 0xFFFFFFFF


def _sign_extends(value: int, bits: int) -> bool:
    """True if the 32-bit ``value`` is the sign extension of its low ``bits``."""
    low = value & ((1 << bits) - 1)
    if low & (1 << (bits - 1)):
        return value == (low | (_MASK32 & ~((1 << bits) - 1)))
    return value == low


def classify_word(word: int) -> Tuple[int, int]:
    """Classify one 32-bit word; return ``(prefix, payload_bits)``.

    Zero words are reported as prefix 0 with 3 payload bits; run-length
    merging across words happens in :func:`compress_line`.
    """
    if not 0 <= word <= _MASK32:
        raise ValueError(f"word out of 32-bit range: {word:#x}")
    if word == 0:
        return 0, 3
    if _sign_extends(word, 4):
        return 1, 4
    if _sign_extends(word, 8):
        return 2, 8
    if _sign_extends(word, 16):
        return 3, 16
    if word & 0xFFFF == 0:
        return 4, 16
    high, low = word >> 16, word & 0xFFFF
    if _sign_extends_half(high) and _sign_extends_half(low):
        return 5, 16
    b = word & 0xFF
    if word == b * 0x01010101:
        return 6, 8
    return 7, 32


def _sign_extends_half(half: int) -> bool:
    """True if a 16-bit halfword is the sign extension of its low byte."""
    low = half & 0xFF
    if low & 0x80:
        return half == (low | 0xFF00)
    return half == low


def compress_line(words: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Compress a line of 32-bit words.

    Returns a list of ``(prefix, payload_bits, run_length)`` records,
    where ``run_length`` > 1 only for zero runs.  The encoded size is the
    sum of ``PREFIX_BITS + payload_bits`` over records.
    """
    if len(words) != WORDS_PER_LINE:
        raise ValueError(f"expected {WORDS_PER_LINE} words, got {len(words)}")
    records: List[Tuple[int, int, int]] = []
    i = 0
    while i < len(words):
        prefix, payload = classify_word(words[i])
        if prefix == 0:
            run = 1
            while run < 7 and i + run < len(words) and words[i + run] == 0:
                run += 1
            records.append((0, 3, run))
            i += run
        else:
            records.append((prefix, payload, 1))
            i += 1
    return records


def compressed_size_bits(words: Sequence[int]) -> int:
    """Bit-exact FPC encoded size of a 16-word line (excludes the tag)."""
    return sum(PREFIX_BITS + payload for _, payload, _ in compress_line(words))


def compressed_size_bytes(words: Sequence[int]) -> int:
    """Encoded size rounded up to whole bytes."""
    return (compressed_size_bits(words) + 7) // 8


def sizes_for(lines: Sequence[Sequence[int]]) -> List[int]:
    """Batched :func:`compressed_size_bytes` over many lines.

    Bit-identical to mapping ``compressed_size_bytes`` over ``lines``
    (the property suite asserts this), but classifies each distinct
    non-zero word value once across the whole batch.  Value pools repeat
    words heavily (zero runs, sign-extended constants, repeated bytes),
    so sizing a whole :class:`~repro.workloads.values.ValueModel` pool in
    one call replaces most classifications with one dict lookup.
    """
    payload_cache: dict = {}
    cache_get = payload_cache.get
    sizes: List[int] = []
    for words in lines:
        if len(words) != WORDS_PER_LINE:
            raise ValueError(f"expected {WORDS_PER_LINE} words, got {len(words)}")
        bits = 0
        i = 0
        while i < WORDS_PER_LINE:
            word = words[i]
            if word == 0:
                run = 1
                while run < 7 and i + run < WORDS_PER_LINE and words[i + run] == 0:
                    run += 1
                bits += PREFIX_BITS + 3  # one zero-run record
                i += run
            else:
                payload = cache_get(word)
                if payload is None:
                    payload = classify_word(word)[1]
                    payload_cache[word] = payload
                bits += PREFIX_BITS + payload
                i += 1
        sizes.append((bits + 7) // 8)
    return sizes


def decompress_check(words: Sequence[int]) -> bool:
    """Verify the encoding is invertible: re-expand the records and check
    that word classes and zero runs reconstruct the original word count
    and that every classified pattern actually regenerates its word.

    FPC is trivially lossless (each record either stores the word verbatim
    or stores enough bits to rebuild it); this check guards our *encoder*
    against misclassification, e.g. claiming sign-extension for a word the
    payload cannot rebuild.
    """
    total = 0
    for prefix, payload, run in compress_line(words):
        if prefix == 0:
            total += run
            continue
        word = words[total]
        if not _pattern_rebuilds(prefix, word):
            return False
        total += 1
    return total == WORDS_PER_LINE


def _pattern_rebuilds(prefix: int, word: int) -> bool:
    if prefix == 1:
        return _sign_extends(word, 4)
    if prefix == 2:
        return _sign_extends(word, 8)
    if prefix == 3:
        return _sign_extends(word, 16)
    if prefix == 4:
        return word & 0xFFFF == 0
    if prefix == 5:
        return _sign_extends_half(word >> 16) and _sign_extends_half(word & 0xFFFF)
    if prefix == 6:
        return word == (word & 0xFF) * 0x01010101
    return True  # uncompressed always rebuilds


# ----------------------------------------------------------------------
# bit-level codec
#
# The simulator itself only consumes sizes, but the verification
# subsystem (repro.verify.fpc_ref) compares this encoder bit-for-bit
# against an independently written reference codec, so the payload
# construction is public API rather than an implementation detail.
# ----------------------------------------------------------------------


def payload_for(prefix: int, word: int) -> int:
    """The payload bits stored for ``word`` under pattern ``prefix``.

    Not defined for prefix 0 (zero runs store the run length instead);
    callers handle runs at the line level.
    """
    if prefix == 1:
        return word & 0xF
    if prefix == 2:
        return word & 0xFF
    if prefix == 3:
        return word & 0xFFFF
    if prefix == 4:
        return word >> 16
    if prefix == 5:
        return ((word >> 16) & 0xFF) << 8 | (word & 0xFF)
    if prefix == 6:
        return word & 0xFF
    if prefix == 7:
        return word
    raise ValueError(f"no per-word payload for prefix {prefix}")


def word_from_payload(prefix: int, payload: int) -> int:
    """Rebuild a 32-bit word from its pattern prefix and payload."""
    if prefix == 1:
        return _extend(payload, 4, 32)
    if prefix == 2:
        return _extend(payload, 8, 32)
    if prefix == 3:
        return _extend(payload, 16, 32)
    if prefix == 4:
        return (payload & 0xFFFF) << 16
    if prefix == 5:
        return (_extend(payload >> 8 & 0xFF, 8, 16) << 16) | _extend(payload & 0xFF, 8, 16)
    if prefix == 6:
        return (payload & 0xFF) * 0x01010101
    if prefix == 7:
        return payload & _MASK32
    raise ValueError(f"no per-word payload for prefix {prefix}")


def _extend(value: int, bits: int, width: int) -> int:
    """Sign-extend the low ``bits`` of ``value`` to ``width`` bits."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value |= ((1 << width) - 1) & ~((1 << bits) - 1)
    return value


def encode_line(words: Sequence[int]) -> Tuple[int, int]:
    """Encode a 16-word line into an FPC bitstream.

    Returns ``(bits, nbits)``: the stream as an integer with the first
    emitted bit most significant.  ``nbits`` always equals
    :func:`compressed_size_bits`.
    """
    bits = 0
    nbits = 0
    i = 0
    for prefix, payload_bits, run in compress_line(words):
        payload = run if prefix == 0 else payload_for(prefix, words[i])
        bits = (bits << PREFIX_BITS) | prefix
        bits = (bits << payload_bits) | payload
        nbits += PREFIX_BITS + payload_bits
        i += run
    return bits, nbits


def decode_line(bits: int, nbits: int) -> List[int]:
    """Decode an FPC bitstream back into 16 words (inverse of
    :func:`encode_line`)."""
    words: List[int] = []
    pos = nbits
    while pos > 0:
        pos -= PREFIX_BITS
        prefix = bits >> pos & (1 << PREFIX_BITS) - 1
        payload_bits = FPC_PATTERNS[prefix][1]
        pos -= payload_bits
        if pos < 0:
            raise ValueError("truncated FPC stream")
        payload = bits >> pos & (1 << payload_bits) - 1
        if prefix == 0:
            if not 1 <= payload <= 7:
                raise ValueError(f"bad zero-run length {payload}")
            words.extend([0] * payload)
        else:
            words.append(word_from_payload(prefix, payload))
    if len(words) != WORDS_PER_LINE:
        raise ValueError(f"stream decoded to {len(words)} words, expected {WORDS_PER_LINE}")
    return words


def line_from_bytes(data: bytes) -> List[int]:
    """Split a 64-byte line into 16 big-endian 32-bit words."""
    if len(data) != WORDS_PER_LINE * 4:
        raise ValueError(f"expected {WORDS_PER_LINE * 4} bytes, got {len(data)}")
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]
