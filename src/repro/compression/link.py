"""Message sizing for the off-chip link, with and without link compression.

Every message carries a header flit (address/command/length).  A data
message carries the cache line as 8-byte flits: 8 of them uncompressed,
or ``segments`` of them when link compression is on (the paper's "1-8
sub-messages (flits), each containing an 8-byte segment").  Requests and
acks are header-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import LINE_BYTES, SEGMENT_BYTES, SEGMENTS_PER_LINE


@dataclass(frozen=True)
class MessageSizer:
    """Computes on-the-wire sizes given the link-compression setting."""

    compressed: bool = False
    header_bytes: int = SEGMENT_BYTES

    def request_bytes(self) -> int:
        """An address-only request or ack message."""
        return self.header_bytes

    def data_bytes(self, segments: int) -> int:
        """A cache-line-carrying message (response or writeback).

        ``segments`` is the line's FPC segment count; ignored when link
        compression is off.
        """
        if not 1 <= segments <= SEGMENTS_PER_LINE:
            raise ValueError(f"segment count out of range: {segments}")
        payload = segments * SEGMENT_BYTES if self.compressed else LINE_BYTES
        return self.header_bytes + payload

    def data_flits(self, segments: int) -> int:
        """Number of 8-byte flits in a data message, excluding the header."""
        return self.data_bytes(segments) // SEGMENT_BYTES - 1

    def uncompressed_equiv_bytes(self) -> int:
        """What a data message would cost with link compression off."""
        return self.header_bytes + LINE_BYTES
