"""Alternative cache-line compression schemes, for baseline comparisons.

The paper builds on FPC, but its related-work section names several
competing schemes.  Implementing them lets the benches answer "how much
of the result is FPC-specific?":

* **FPC** — the paper's scheme (:mod:`repro.compression.fpc`).
* **FVC** (Yang, Zhang & Gupta, MICRO'00) — *Frequent Value
  Compression*: a small table of frequently-occurring 32-bit values;
  words matching a table entry are encoded by their index, others stored
  verbatim with a flag bit.
* **Selective** (Lee, Hong & Kim, ICCD'99) — compress a line (with FPC
  here) only if it shrinks to at most half its size, else store it
  verbatim; this halves the compression-tag space at the cost of
  intermediate ratios.
* **BDI** (Pekhimenko et al., PACT'12) — *Base-Delta-Immediate*: the
  line as one explicit base plus narrow per-chunk deltas, with an
  implicit zero base for small immediates
  (:mod:`repro.compression.bdi`).
* **ZeroOnly** — a degenerate scheme that only collapses zero words,
  isolating how much of FPC's benefit comes from zeros (the paper notes
  this dominates for floating-point data).

Every scheme maps 16 words -> encoded byte size; segment counts come
from :func:`repro.compression.segments.segments_for_size`.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, List, Sequence

from repro.compression.fpc import PREFIX_BITS, WORDS_PER_LINE, compressed_size_bytes
from repro.compression.segments import segments_for_size
from repro.params import LINE_BYTES


def fpc_size(words: Sequence[int]) -> int:
    """The paper's FPC encoded size in bytes."""
    return compressed_size_bytes(words)


def zero_only_size(words: Sequence[int]) -> int:
    """Zero-run-only encoding: 6 bits per zero run (<=7), 35 per other word."""
    bits = 0
    i = 0
    while i < len(words):
        if words[i] == 0:
            run = 1
            while run < 7 and i + run < len(words) and words[i + run] == 0:
                run += 1
            bits += PREFIX_BITS + 3
            i += run
        else:
            bits += PREFIX_BITS + 32
            i += 1
    return (bits + 7) // 8


class FrequentValueTable:
    """The FVC dictionary: the most frequent 32-bit values of a sample.

    Hardware builds this adaptively; for trace analysis we train it on a
    sample of lines (the common evaluation methodology).
    """

    def __init__(self, entries: int = 8) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("FVC table size must be a positive power of two")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self._values: Dict[int, int] = {}

    def train(self, lines: Iterable[Sequence[int]]) -> None:
        counts: Counter = Counter()
        for words in lines:
            counts.update(words)
        self._values = {
            value: idx for idx, (value, _) in enumerate(counts.most_common(self.entries))
        }

    def __contains__(self, word: int) -> bool:
        return word in self._values

    def encoded_size_bytes(self, words: Sequence[int]) -> int:
        """1 flag bit per word + index bits for hits, 32 bits for misses."""
        bits = 0
        for w in words:
            bits += 1 + (self.index_bits if w in self._values else 32)
        return (bits + 7) // 8


def selective_size(words: Sequence[int]) -> int:
    """Lee et al.: keep the FPC encoding only if it is <= half a line."""
    size = fpc_size(words)
    return size if size <= LINE_BYTES // 2 else LINE_BYTES


class CompressionScheme:
    """A named line-size function plus its segment mapping."""

    def __init__(self, name: str, size_fn: Callable[[Sequence[int]], int]) -> None:
        self.name = name
        self._size_fn = size_fn

    def size_bytes(self, words: Sequence[int]) -> int:
        size = self._size_fn(words)
        if size <= 0:
            raise ValueError(f"scheme {self.name} produced non-positive size")
        return size

    def segments(self, words: Sequence[int]) -> int:
        return segments_for_size(min(self.size_bytes(words), LINE_BYTES))


def build_scheme(name: str, sample_lines: Sequence[Sequence[int]] = ()) -> CompressionScheme:
    """Construct a scheme by name; FVC trains on ``sample_lines``."""
    if name == "fpc":
        return CompressionScheme("fpc", fpc_size)
    if name == "zero_only":
        return CompressionScheme("zero_only", zero_only_size)
    if name == "selective":
        return CompressionScheme("selective", selective_size)
    if name == "fvc":
        table = FrequentValueTable()
        table.train(sample_lines)
        return CompressionScheme("fvc", table.encoded_size_bytes)
    if name == "bdi":
        from repro.compression.bdi import bdi_size

        return CompressionScheme("bdi", bdi_size)
    raise ValueError(f"unknown compression scheme {name!r}; "
                     f"choose from bdi, fpc, fvc, selective, zero_only")


SCHEME_NAMES = ("fpc", "bdi", "fvc", "selective", "zero_only")


def compare_schemes(lines: Sequence[Sequence[int]]) -> Dict[str, float]:
    """Average segments/line for every scheme over a line sample."""
    out: Dict[str, float] = {}
    for name in SCHEME_NAMES:
        scheme = build_scheme(name, sample_lines=lines)
        out[name] = sum(scheme.segments(w) for w in lines) / len(lines)
    return out
