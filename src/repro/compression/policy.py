"""Adaptive cache compression policy (Alameldeen & Wood, ISCA 2004).

The HPCA'07 paper's compressed L2 also implements this: "an adaptive
compression algorithm that dynamically compresses lines only when the
benefit of compression (reduced misses) outweighs the cost (increased
L2 hit latency due to decompression)".  For the paper's workloads the
policy always chose to compress; we implement it so that claim — and
workloads where it does *not* hold — can be evaluated.

Mechanism (from ISCA'04): a global saturating counter is updated on L2
accesses using the LRU stack depth of the touched line:

* a hit whose stack depth lies *beyond* the uncompressed associativity
  would have been a miss without compression — credit the counter with
  the avoided miss penalty;
* a hit to a *compressed* line within the uncompressed ways paid the
  decompression latency for nothing — debit the counter by that penalty;
* misses to lines that compression could not have held leave the counter
  unchanged.

New lines are stored compressed while the counter is non-negative.
"""

from __future__ import annotations


class AdaptiveCompressionPolicy:
    def __init__(
        self,
        miss_penalty: float = 400.0,
        decompression_penalty: float = 5.0,
        saturation: float = 1_000_000.0,
        enabled: bool = True,
    ) -> None:
        if miss_penalty < 0 or decompression_penalty < 0:
            raise ValueError("penalties must be non-negative")
        if saturation <= 0:
            raise ValueError("saturation must be positive")
        self.miss_penalty = miss_penalty
        self.decompression_penalty = decompression_penalty
        self.saturation = saturation
        self.enabled = enabled
        self.counter = 0.0
        self.avoided_miss_events = 0
        self.penalized_hit_events = 0
        # Optional tracing callback ``hook(compressing, counter)`` fired
        # when the policy's compress/don't-compress phase flips; installed
        # by repro.obs.trace and forbidden from touching the counter.
        self.trace_hook = None

    def reset_stats(self) -> None:
        """Zero the *event* tallies; the benefit/cost ``counter`` is the
        policy's learned state and deliberately survives a stats reset."""
        self.avoided_miss_events = 0
        self.penalized_hit_events = 0

    def should_compress(self) -> bool:
        """Store the next compressible line compressed?"""
        return not self.enabled or self.counter >= 0.0

    def on_hit(self, stack_depth: int, uncompressed_assoc: int, compressed: bool) -> None:
        """Feed one L2 hit: ``stack_depth`` is the line's 0-based LRU
        position, ``compressed`` whether the line paid decompression."""
        if stack_depth >= uncompressed_assoc:
            # Only reachable because compression packed extra lines in.
            self.avoided_miss_events += 1
            self._bump(self.miss_penalty)
        elif compressed:
            self.penalized_hit_events += 1
            self._bump(-self.decompression_penalty)

    def _bump(self, delta: float) -> None:
        was_compressing = self.counter >= 0.0
        self.counter = max(-self.saturation, min(self.saturation, self.counter + delta))
        if self.trace_hook is not None and (self.counter >= 0.0) != was_compressing:
            self.trace_hook(self.counter >= 0.0, self.counter)
