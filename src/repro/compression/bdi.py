"""Base-Delta-Immediate (BDI) compression.

BDI (Pekhimenko et al., PACT'12) compresses a cache line as one or two
*base* values plus an array of narrow per-chunk *deltas*: the line is cut
into equal chunks (2, 4 or 8 bytes), and each chunk is stored as a small
signed delta from either an implicit zero base (the "immediate" part) or
a single explicit base taken from the line itself.  A one-bit mask per
chunk records which base it used.  The encoder tries a fixed menu of
(base size, delta size) pairs plus two degenerate encodings and keeps the
smallest that fits.

The eight encodings, with their encoded sizes for a 64-byte line (the
per-chunk base-selection mask is stored explicitly here, so the encoded
stream is self-describing; the 4-bit encoding id lives in the tag, as in
the paper, and is not counted):

============== ===== ===== ==========================================
name           base  delta bytes (base + mask + deltas)
============== ===== ===== ==========================================
zeros            --    --   1   (all-zero line)
rep_values        8    --   8   (one 8-byte value repeated)
base8_delta1      8     1  17   (8 + 1 + 8x1)
base4_delta1      4     1  22   (4 + 2 + 16x1)
base8_delta2      8     2  25   (8 + 1 + 8x2)
base2_delta1      2     1  38   (2 + 4 + 32x1)
base4_delta2      4     2  38   (4 + 2 + 16x2)
base8_delta4      8     4  41   (8 + 1 + 8x4)
uncompressed     --    --  64
============== ===== ===== ==========================================

Like :mod:`repro.compression.fpc`, the simulator itself only consumes
sizes (segment counts via :mod:`repro.compression.segments`); the full
encoder/decoder exists so the property suite can prove the size
accounting corresponds to a real, invertible encoding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compression.fpc import WORDS_PER_LINE
from repro.params import LINE_BYTES

# (name, base_bytes, delta_bytes, encoded_bytes) in priority order:
# candidates are tried top to bottom and the first smallest size wins.
BDI_ENCODINGS: Tuple[Tuple[str, int, int, int], ...] = (
    ("zeros", 0, 0, 1),
    ("rep_values", 8, 0, 8),
    ("base8_delta1", 8, 1, 17),
    ("base4_delta1", 4, 1, 22),
    ("base8_delta2", 8, 2, 25),
    ("base2_delta1", 2, 1, 38),
    ("base4_delta2", 4, 2, 38),
    ("base8_delta4", 8, 4, 41),
    ("uncompressed", 0, 0, LINE_BYTES),
)

_ENCODING_INDEX: Dict[str, int] = {name: i for i, (name, _, _, _) in enumerate(BDI_ENCODINGS)}


def line_to_bytes(words: Sequence[int]) -> bytes:
    """Join 16 big-endian 32-bit words into the 64-byte line image."""
    if len(words) != WORDS_PER_LINE:
        raise ValueError(f"expected {WORDS_PER_LINE} words, got {len(words)}")
    return b"".join(int(w).to_bytes(4, "big") for w in words)


def words_from_bytes(data: bytes) -> List[int]:
    """Split a 64-byte line image back into 16 big-endian 32-bit words."""
    if len(data) != LINE_BYTES:
        raise ValueError(f"expected {LINE_BYTES} bytes, got {len(data)}")
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, LINE_BYTES, 4)]


def _chunks(data: bytes, size: int) -> List[int]:
    return [int.from_bytes(data[i : i + size], "big") for i in range(0, len(data), size)]


def _sign_extends(delta: int, delta_bytes: int, base_bytes: int) -> bool:
    """True if the ``base_bytes``-wide modular delta is the sign extension
    of its low ``delta_bytes * 8`` bits (i.e. it fits the narrow field)."""
    bits = delta_bytes * 8
    width = base_bytes * 8
    low = delta & ((1 << bits) - 1)
    if low & (1 << (bits - 1)):
        return delta == (low | (((1 << width) - 1) & ~((1 << bits) - 1)))
    return delta == low


def _try_base_delta(
    data: bytes, base_bytes: int, delta_bytes: int
) -> Optional[Tuple[int, List[bool], List[int]]]:
    """Attempt one (base, delta) encoding of the line bytes.

    Returns ``(base, mask, deltas)`` on success — ``mask[i]`` true when
    chunk ``i`` is a delta from the explicit base rather than from the
    implicit zero base — or None when some chunk fits neither base.
    Deltas are modular (mod 2**(8*base_bytes)), so reconstruction is
    exact for any chunk values.
    """
    modulus = 1 << (base_bytes * 8)
    chunks = _chunks(data, base_bytes)
    base: Optional[int] = None
    mask: List[bool] = []
    deltas: List[int] = []
    for chunk in chunks:
        if _sign_extends(chunk, delta_bytes, base_bytes):
            mask.append(False)
            deltas.append(chunk)
            continue
        if base is None:
            base = chunk  # first chunk the zero base cannot cover
        delta = (chunk - base) % modulus
        if not _sign_extends(delta, delta_bytes, base_bytes):
            return None
        mask.append(True)
        deltas.append(delta)
    return (base if base is not None else 0), mask, deltas


def classify_line(words: Sequence[int]) -> Tuple[str, int]:
    """Pick the smallest applicable encoding; return ``(name, bytes)``."""
    data = line_to_bytes(words)
    if data == b"\x00" * LINE_BYTES:
        return "zeros", 1
    first = data[:8]
    if data == first * (LINE_BYTES // 8):
        return "rep_values", 8
    for name, base_bytes, delta_bytes, size in BDI_ENCODINGS:
        if delta_bytes == 0:
            continue
        if _try_base_delta(data, base_bytes, delta_bytes) is not None:
            return name, size
    return "uncompressed", LINE_BYTES


def compressed_size_bytes(words: Sequence[int]) -> int:
    """BDI encoded size in bytes (excludes the 4-bit tag-borne encoding id)."""
    return classify_line(words)[1]


def sizes_for(lines: Sequence[Sequence[int]]) -> List[int]:
    """Batched :func:`compressed_size_bytes` over many lines.

    Bit-identical to mapping ``compressed_size_bytes`` over ``lines``,
    but classifies each distinct line once.  Value pools repeat whole
    lines (every all-zero line is identical, sparse generators collide),
    so deduplicating at line granularity is the BDI analogue of FPC's
    per-word payload cache.
    """
    cache: Dict[Tuple[int, ...], int] = {}
    sizes: List[int] = []
    for words in lines:
        key = tuple(words)
        size = cache.get(key)
        if size is None:
            size = compressed_size_bytes(words)
            cache[key] = size
        sizes.append(size)
    return sizes


def bdi_size(words: Sequence[int]) -> int:
    """Scheme-registry entry point (mirrors ``schemes.fpc_size``)."""
    return compressed_size_bytes(words)


# ----------------------------------------------------------------------
# bit-level codec
#
# As with FPC, the simulator never decodes payloads; the encoder/decoder
# pair exists so the property suite can prove that every size reported
# above corresponds to a real, invertible encoding of the line bytes.
# ----------------------------------------------------------------------


def _pack_mask(mask: Sequence[bool]) -> bytes:
    out = bytearray((len(mask) + 7) // 8)
    for i, bit in enumerate(mask):
        if bit:
            out[i // 8] |= 0x80 >> (i % 8)
    return bytes(out)


def _unpack_mask(data: bytes, n: int) -> List[bool]:
    return [bool(data[i // 8] & (0x80 >> (i % 8))) for i in range(n)]


def encode_line(words: Sequence[int]) -> Tuple[str, bytes]:
    """Encode a 16-word line; returns ``(encoding_name, payload)`` with
    ``len(payload) == compressed_size_bytes(words)``."""
    data = line_to_bytes(words)
    name, size = classify_line(words)
    if name == "zeros":
        payload = b"\x00"
    elif name == "rep_values":
        payload = data[:8]
    elif name == "uncompressed":
        payload = data
    else:
        _, base_bytes, delta_bytes, _ = BDI_ENCODINGS[_ENCODING_INDEX[name]]
        encoded = _try_base_delta(data, base_bytes, delta_bytes)
        assert encoded is not None  # classify_line just proved it fits
        base, mask, deltas = encoded
        payload = (
            base.to_bytes(base_bytes, "big")
            + _pack_mask(mask)
            + b"".join((d & ((1 << (delta_bytes * 8)) - 1)).to_bytes(delta_bytes, "big") for d in deltas)
        )
    if len(payload) != size:
        raise ValueError(f"{name} payload is {len(payload)} bytes, expected {size}")
    return name, payload


def decode_line(name: str, payload: bytes) -> List[int]:
    """Rebuild the 16 words from an :func:`encode_line` result."""
    index = _ENCODING_INDEX.get(name)
    if index is None:
        raise ValueError(f"unknown BDI encoding {name!r}")
    _, base_bytes, delta_bytes, size = BDI_ENCODINGS[index]
    if len(payload) != size:
        raise ValueError(f"{name} payload is {len(payload)} bytes, expected {size}")
    if name == "zeros":
        return [0] * WORDS_PER_LINE
    if name == "rep_values":
        return words_from_bytes(payload * (LINE_BYTES // 8))
    if name == "uncompressed":
        return words_from_bytes(payload)
    n_chunks = LINE_BYTES // base_bytes
    modulus = 1 << (base_bytes * 8)
    base = int.from_bytes(payload[:base_bytes], "big")
    mask_bytes = (n_chunks + 7) // 8
    mask = _unpack_mask(payload[base_bytes : base_bytes + mask_bytes], n_chunks)
    data = bytearray()
    pos = base_bytes + mask_bytes
    bits = delta_bytes * 8
    for i in range(n_chunks):
        delta = int.from_bytes(payload[pos : pos + delta_bytes], "big")
        pos += delta_bytes
        if delta & (1 << (bits - 1)):  # sign-extend the narrow field
            delta |= (modulus - 1) & ~((1 << bits) - 1)
        chunk = (base + delta) % modulus if mask[i] else delta
        data += chunk.to_bytes(base_bytes, "big")
    return words_from_bytes(bytes(data))
