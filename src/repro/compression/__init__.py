"""Frequent Pattern Compression and the segment/link packing built on it."""

from repro.compression.fpc import (
    FPC_PATTERNS,
    classify_word,
    compress_line,
    compressed_size_bits,
    decompress_check,
)
from repro.compression.segments import segments_for_line, segments_for_size
from repro.compression.link import MessageSizer

__all__ = [
    "FPC_PATTERNS",
    "classify_word",
    "compress_line",
    "compressed_size_bits",
    "decompress_check",
    "segments_for_line",
    "segments_for_size",
    "MessageSizer",
]
