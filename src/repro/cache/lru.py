"""LRU stack helpers shared by the plain and compressed caches.

Sets are small (4-8 ways), so an MRU-first Python list beats any fancier
structure; these helpers keep the stack-manipulation idioms in one place.
"""

from __future__ import annotations

from typing import List, Optional, TypeVar

T = TypeVar("T")


def touch(stack: List[T], item: T) -> None:
    """Move ``item`` to the MRU (front) position."""
    if stack[0] is item:  # already MRU: repeated touches are the common case
        return
    stack.remove(item)
    stack.insert(0, item)


def lru_valid(stack: List, *, is_valid=lambda e: e.valid) -> Optional[object]:
    """Return the least-recently-used valid entry, or None."""
    for entry in reversed(stack):
        if is_valid(entry):
            return entry
    return None


def lru_invalid(stack: List, *, is_valid=lambda e: e.valid) -> Optional[object]:
    """Return the least-recently-used invalid entry, or None."""
    for entry in reversed(stack):
        if not is_valid(entry):
            return entry
    return None
