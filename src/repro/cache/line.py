"""Cache tag entries and MSI line states."""

from __future__ import annotations


class MSIState:
    """MSI coherence states, as plain ints for speed in the hot path."""

    INVALID = 0
    SHARED = 1
    MODIFIED = 2

    NAMES = {0: "I", 1: "S", 2: "M"}


class TagEntry:
    """One address tag in a cache set.

    ``valid=False`` entries still hold their last address: these are the
    *victim tags* the adaptive prefetcher searches to detect harmful
    prefetches (Section 3 of the paper).

    ``fill_time`` is the cycle at which the line's data actually arrives;
    lines are inserted into the tag array at issue time, so a demand hit
    before ``fill_time`` is a *partial hit* that waits for the in-flight
    fill.

    ``way`` is the entry's fixed physical position within its set,
    assigned at construction and never changed: the recency stacks
    reorder freely, but tree-PLRU replacement (:mod:`repro.cache.plru`)
    needs a stable way index per tag.
    """

    __slots__ = (
        "addr",
        "valid",
        "state",
        "dirty",
        "prefetch_bit",
        "segments",
        "fill_time",
        "sharers",
        "owner",
        "way",
    )

    def __init__(self, way: int = 0) -> None:
        self.way: int = way
        self.addr: int = -1
        self.valid: bool = False
        self.state: int = MSIState.INVALID
        self.dirty: bool = False
        self.prefetch_bit: bool = False
        self.segments: int = 8
        self.fill_time: float = 0.0
        self.sharers: int = 0  # bit-vector of L1 sharers (L2 directory)
        self.owner: int = -1  # core id holding the line M at L1, else -1

    def reset(self) -> None:
        """Invalidate but *retain the address* (becomes a victim tag)."""
        self.valid = False
        self.state = MSIState.INVALID
        self.dirty = False
        self.prefetch_bit = False
        self.sharers = 0
        self.owner = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "V" if self.valid else "v"
        return (
            f"<Tag {flag} addr={self.addr:#x} {MSIState.NAMES[self.state]}"
            f" seg={self.segments}{' pf' if self.prefetch_bit else ''}>"
        )
