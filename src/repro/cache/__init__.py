"""Cache substrate: plain set-associative caches and the compressed L2."""

from repro.cache.line import MSIState, TagEntry
from repro.cache.set_assoc import Eviction, SetAssocCache
from repro.cache.compressed import CompressedSetCache

__all__ = [
    "MSIState",
    "TagEntry",
    "Eviction",
    "SetAssocCache",
    "CompressedSetCache",
]
