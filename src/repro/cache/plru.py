"""Tree pseudo-LRU victim selection (the hardware-buildable LRU stand-in).

A W-way set (W a power of two) keeps W-1 direction bits arranged as a
binary tree: node 0 is the root, node ``i`` has children ``2i+1`` (left)
and ``2i+2`` (right), and the leaves map left-to-right onto ways
``0..W-1``.  Each bit points toward the subtree holding the next victim
(0 = left, 1 = right).  Touching a way flips every bit on its root path
to point *away* from it; selecting a victim walks the bits from the
root.  The walk takes a candidate mask (one bit per way) so callers can
restrict selection to invalid frames (fill into empty ways first) or to
valid ones (the compressed L2 evicts among live lines only) — when the
indicated subtree holds no candidate, the walk diverts to the sibling.

The per-set bit vectors are packed into a single int each and stored by
the caches in plain lists, so the flat-array kernel
(:mod:`repro.core.fastsim`) aliases the same list and both engines
mutate identical state.  These two functions are the single shared
implementation for both engines; the differential oracle
(:mod:`repro.verify.oracle`) reimplements the policy independently, per
its no-shared-cache-code rule.
"""

from __future__ import annotations


def plru_touch(bits: int, way: int, ways: int) -> int:
    """Return the tree bits after an access to ``way``.

    Every node on the root->leaf path is set to point at the *other*
    subtree, protecting the touched way.  ``ways`` must be the (power of
    two) way count the bit vector was built for; ``ways == 1`` has no
    tree and returns ``bits`` unchanged.
    """
    node = 0
    lo = 0
    size = ways
    while size > 1:
        half = size >> 1
        if way < lo + half:
            bits |= 1 << node  # point right, away from the touched way
            node = 2 * node + 1
        else:
            bits &= ~(1 << node)  # point left
            node = 2 * node + 2
            lo += half
        size = half
    return bits


def plru_victim(bits: int, ways: int, mask: int) -> int:
    """Walk the tree bits to the victim way among ``mask`` candidates.

    ``mask`` has bit ``w`` set for each candidate way and must be
    non-zero.  When a direction bit points into a subtree with no
    candidate, the walk diverts to the sibling subtree (hardware gates
    the direction bits with the way-valid vector the same way).
    """
    node = 0
    lo = 0
    size = ways
    while size > 1:
        half = size >> 1
        left = ((1 << half) - 1) << lo
        go_right = (bits >> node) & 1
        if go_right:
            if not (mask & (left << half)):
                go_right = 0
        elif not (mask & left):
            go_right = 1
        if go_right:
            node = 2 * node + 2
            lo += half
        else:
            node = 2 * node + 1
        size = half
    return lo
