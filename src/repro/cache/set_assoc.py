"""Plain set-associative cache with LRU replacement (the private L1s).

Each set carries ``victim_depth`` extra address-only victim tags so the
adaptive prefetcher can detect harmful prefetches at the L1s too (the L2
gets real victim tags for free from compression's spare address tags; see
:mod:`repro.cache.compressed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.line import MSIState, TagEntry
from repro.cache.lru import touch
from repro.cache.plru import plru_touch, plru_victim
from repro.params import CacheConfig


@dataclass(slots=True)
class Eviction:
    """What an insertion pushed out."""

    addr: int
    dirty: bool
    prefetch_untouched: bool  # prefetch bit still set => useless prefetch
    state: int = MSIState.INVALID
    sharers: int = 0  # L1 sharer bit-vector (meaningful for L2 evictions)
    owner: int = -1
    segments: int = 8


class SetAssocCache:
    """LRU (or tree-PLRU) set-associative cache addressed by *line* address.

    The per-set recency stack is maintained identically in both modes —
    ``set_has_prefetched_line``, stack-depth probes and the state
    comparisons in the differential oracle all read it — PLRU changes
    only *which frame an insertion claims* (tree bits instead of the
    stack tail) and adds tree-bit updates on touch/insert.
    """

    __slots__ = (
        "config", "n_sets", "assoc", "victim_depth", "_sets", "_map",
        "_victims", "_plru", "_frames",
    )

    def __init__(self, config: CacheConfig, victim_depth: int = 0) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self.victim_depth = victim_depth
        self._sets: List[List[TagEntry]] = [
            [TagEntry(way) for way in range(config.assoc)] for _ in range(self.n_sets)
        ]
        self._map: Dict[int, TagEntry] = {}
        # Per-set MRU-first list of recently evicted line addresses.
        self._victims: List[List[int]] = [[] for _ in range(self.n_sets)]
        if config.replacement == "plru":
            # One packed int of tree direction bits per set, plus a fixed
            # way -> frame index (the stacks reorder; the tree needs the
            # physical position).  The bits list is aliased in place by
            # the fast engine, so it never needs syncing.
            self._plru: Optional[List[int]] = [0] * self.n_sets
            self._frames: Optional[List[List[TagEntry]]] = [
                list(stack) for stack in self._sets
            ]
        else:
            self._plru = None
            self._frames = None

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.n_sets

    def probe(self, line_addr: int) -> Optional[TagEntry]:
        """Lookup without touching LRU state."""
        entry = self._map.get(line_addr)
        if entry is not None and entry.valid:
            return entry
        return None

    def touch(self, line_addr: int) -> None:
        """Promote a resident line to MRU."""
        entry = self._map.get(line_addr)
        if entry is None or not entry.valid:
            raise KeyError(f"line {line_addr:#x} not resident")
        touch(self._sets[line_addr % self.n_sets], entry)
        if self._plru is not None:
            si = line_addr % self.n_sets
            self._plru[si] = plru_touch(self._plru[si], entry.way, self.assoc)

    def touch_entry(self, entry: TagEntry) -> None:
        """Promote an already-probed entry to MRU (hot-path variant that
        skips the redundant map lookup)."""
        stack = self._sets[entry.addr % self.n_sets]
        if stack[0] is not entry:
            stack.remove(entry)
            stack.insert(0, entry)
        if self._plru is not None:
            si = entry.addr % self.n_sets
            self._plru[si] = plru_touch(self._plru[si], entry.way, self.assoc)

    def insert(
        self,
        line_addr: int,
        state: int = MSIState.SHARED,
        dirty: bool = False,
        prefetch: bool = False,
        fill_time: float = 0.0,
    ) -> Optional[Eviction]:
        """Insert a line at MRU, returning the eviction it caused (if any)."""
        resident = self._map.get(line_addr)
        if resident is not None and resident.valid:
            raise ValueError(f"line {line_addr:#x} already resident")
        stack = self._sets[line_addr % self.n_sets]
        if self._plru is None:
            # Invalid entries are kept at the stack tail (see invalidate),
            # so the last slot is either a free frame or the true LRU
            # line; no free-frame scan is needed.
            entry = stack[-1]
        else:
            # Tree-PLRU: fill an invalid frame first (walking the tree
            # over the invalid ways keeps the choice deterministic), else
            # evict the tree's victim among the valid ways.
            si = line_addr % self.n_sets
            invalid_mask = 0
            valid_mask = 0
            for e in stack:
                if e.valid:
                    valid_mask |= 1 << e.way
                else:
                    invalid_mask |= 1 << e.way
            way = plru_victim(
                self._plru[si], self.assoc, invalid_mask or valid_mask
            )
            entry = self._frames[si][way]
        eviction = None
        if entry.valid:
            # SetAssocCache._evict, inlined (the field resets are folded
            # into the overwrites below; sharers/owner are reset here).
            old = entry.addr
            eviction = Eviction(old, entry.dirty, entry.prefetch_bit, entry.state)
            self._map.pop(old, None)
            if self.victim_depth:
                victims = self._victims[old % self.n_sets]
                if old in victims:
                    victims.remove(old)
                victims.insert(0, old)
                del victims[self.victim_depth :]
            entry.sharers = 0
            entry.owner = -1
        entry.addr = line_addr
        entry.valid = True
        entry.state = state
        entry.dirty = dirty
        entry.prefetch_bit = prefetch
        entry.fill_time = fill_time
        self._map[line_addr] = entry
        if self._plru is None:
            del stack[-1]
        else:
            stack.remove(entry)
            si = line_addr % self.n_sets
            self._plru[si] = plru_touch(self._plru[si], entry.way, self.assoc)
        stack.insert(0, entry)
        return eviction

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        """Coherence invalidation; the tag becomes a victim tag."""
        entry = self._map.get(line_addr)
        if entry is None or not entry.valid:
            return None
        eviction = self._evict(entry)
        # Keep freed frames at the stack tail so insert can always reuse
        # the last slot without scanning (invalid frames never matter for
        # LRU order — probe and touch skip them).
        stack = self._sets[line_addr % self.n_sets]
        stack.remove(entry)
        stack.append(entry)
        return eviction

    def victim_match(self, line_addr: int) -> bool:
        """Was this line recently evicted from its set (harmful-prefetch probe)?"""
        return line_addr in self._victims[self.set_index(line_addr)]

    def set_has_prefetched_line(self, line_addr: int) -> bool:
        """Does the set currently hold any still-unreferenced prefetched line?"""
        for entry in self._sets[self.set_index(line_addr)]:
            if entry.valid and entry.prefetch_bit:
                return True
        return False

    def resident_lines(self) -> int:
        return sum(1 for e in self._map.values() if e.valid)

    def check_invariants(self) -> List[tuple]:
        """Verify the structural invariants the hot path relies on.

        Returns ``(invariant, message, context)`` tuples, one per problem
        found (empty list = healthy).  Checked: fixed stack geometry,
        invalid-frames-at-tail ordering (the insert fast path depends on
        it), set-index placement, ``_map`` <-> stack agreement, duplicate
        tags, and the victim-tag depth bound.  Used by
        :mod:`repro.obs.audit`; kept here so the structure and its
        contract live side by side.
        """
        problems: List[tuple] = []
        valid_addrs: Dict[int, TagEntry] = {}
        for index, stack in enumerate(self._sets):
            if len(stack) != self.assoc:
                problems.append((
                    "set_assoc.stack_size",
                    "LRU stack does not hold exactly assoc frames",
                    {"set": index, "frames": len(stack), "assoc": self.assoc},
                ))
            seen_invalid = False
            for depth, entry in enumerate(stack):
                if not entry.valid:
                    seen_invalid = True
                    continue
                if seen_invalid:
                    problems.append((
                        "set_assoc.invalid_at_tail",
                        "valid frame found below an invalid frame",
                        {"set": index, "depth": depth, "addr": entry.addr},
                    ))
                if entry.addr % self.n_sets != index:
                    problems.append((
                        "set_assoc.set_index",
                        "line resides in the wrong set",
                        {"set": index, "addr": entry.addr},
                    ))
                if entry.addr in valid_addrs:
                    problems.append((
                        "set_assoc.duplicate_tag",
                        "address resident in two frames",
                        {"set": index, "addr": entry.addr},
                    ))
                if self._map.get(entry.addr) is not entry:
                    problems.append((
                        "set_assoc.map_stack_disagree",
                        "stack frame not reachable through _map",
                        {"set": index, "addr": entry.addr},
                    ))
                valid_addrs[entry.addr] = entry
        for addr, entry in self._map.items():
            if not entry.valid or entry.addr != addr:
                problems.append((
                    "set_assoc.map_entry",
                    "_map references an invalid or mislabelled frame",
                    {"addr": addr, "valid": entry.valid, "entry_addr": entry.addr},
                ))
            elif addr not in valid_addrs:
                problems.append((
                    "set_assoc.map_orphan",
                    "_map entry not present in any LRU stack",
                    {"addr": addr},
                ))
        for index, victims in enumerate(self._victims):
            if len(victims) > self.victim_depth:
                problems.append((
                    "set_assoc.victim_depth",
                    "victim list exceeds its configured depth",
                    {"set": index, "len": len(victims), "depth": self.victim_depth},
                ))
        if self._plru is not None:
            limit = 1 << (self.assoc - 1)
            for index, bits in enumerate(self._plru):
                if not 0 <= bits < limit:
                    problems.append((
                        "set_assoc.plru_bits",
                        "tree bits outside the assoc-1 bit range",
                        {"set": index, "bits": bits, "assoc": self.assoc},
                    ))
            for index, frames in enumerate(self._frames):
                for way, entry in enumerate(frames):
                    if entry.way != way or entry not in self._sets[index]:
                        problems.append((
                            "set_assoc.plru_frames",
                            "way->frame table disagrees with the set",
                            {"set": index, "way": way},
                        ))
        return problems

    def _evict(self, entry: TagEntry) -> Eviction:
        addr = entry.addr
        eviction = Eviction(addr, entry.dirty, entry.prefetch_bit, entry.state)
        self._map.pop(addr, None)
        if self.victim_depth:
            victims = self._victims[addr % self.n_sets]
            if addr in victims:
                victims.remove(addr)
            victims.insert(0, addr)
            del victims[self.victim_depth :]
        # TagEntry.reset, inlined (invalidate but retain the address).
        entry.valid = False
        entry.state = MSIState.INVALID
        entry.dirty = False
        entry.prefetch_bit = False
        entry.sharers = 0
        entry.owner = -1
        return eviction
