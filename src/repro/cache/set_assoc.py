"""Plain set-associative cache with LRU replacement (the private L1s).

Each set carries ``victim_depth`` extra address-only victim tags so the
adaptive prefetcher can detect harmful prefetches at the L1s too (the L2
gets real victim tags for free from compression's spare address tags; see
:mod:`repro.cache.compressed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.line import MSIState, TagEntry
from repro.cache.lru import touch
from repro.params import CacheConfig


@dataclass
class Eviction:
    """What an insertion pushed out."""

    addr: int
    dirty: bool
    prefetch_untouched: bool  # prefetch bit still set => useless prefetch
    state: int = MSIState.INVALID
    sharers: int = 0  # L1 sharer bit-vector (meaningful for L2 evictions)
    owner: int = -1
    segments: int = 8


class SetAssocCache:
    """LRU set-associative cache addressed by *line* address."""

    def __init__(self, config: CacheConfig, victim_depth: int = 0) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self.victim_depth = victim_depth
        self._sets: List[List[TagEntry]] = [
            [TagEntry() for _ in range(config.assoc)] for _ in range(self.n_sets)
        ]
        self._map: Dict[int, TagEntry] = {}
        # Per-set MRU-first list of recently evicted line addresses.
        self._victims: List[List[int]] = [[] for _ in range(self.n_sets)]

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.n_sets

    def probe(self, line_addr: int) -> Optional[TagEntry]:
        """Lookup without touching LRU state."""
        entry = self._map.get(line_addr)
        if entry is not None and entry.valid:
            return entry
        return None

    def touch(self, line_addr: int) -> None:
        """Promote a resident line to MRU."""
        entry = self._map.get(line_addr)
        if entry is None or not entry.valid:
            raise KeyError(f"line {line_addr:#x} not resident")
        touch(self._sets[self.set_index(line_addr)], entry)

    def insert(
        self,
        line_addr: int,
        *,
        state: int = MSIState.SHARED,
        dirty: bool = False,
        prefetch: bool = False,
        fill_time: float = 0.0,
    ) -> Optional[Eviction]:
        """Insert a line at MRU, returning the eviction it caused (if any)."""
        if self.probe(line_addr) is not None:
            raise ValueError(f"line {line_addr:#x} already resident")
        stack = self._sets[self.set_index(line_addr)]
        entry = self._find_free(stack)
        eviction = None
        if entry is None:
            entry = stack[-1]  # LRU
            eviction = self._evict(entry)
        entry.addr = line_addr
        entry.valid = True
        entry.state = state
        entry.dirty = dirty
        entry.prefetch_bit = prefetch
        entry.fill_time = fill_time
        self._map[line_addr] = entry
        touch(stack, entry)
        return eviction

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        """Coherence invalidation; the tag becomes a victim tag."""
        entry = self._map.get(line_addr)
        if entry is None or not entry.valid:
            return None
        return self._evict(entry)

    def victim_match(self, line_addr: int) -> bool:
        """Was this line recently evicted from its set (harmful-prefetch probe)?"""
        return line_addr in self._victims[self.set_index(line_addr)]

    def set_has_prefetched_line(self, line_addr: int) -> bool:
        """Does the set currently hold any still-unreferenced prefetched line?"""
        for entry in self._sets[self.set_index(line_addr)]:
            if entry.valid and entry.prefetch_bit:
                return True
        return False

    def resident_lines(self) -> int:
        return sum(1 for e in self._map.values() if e.valid)

    def _find_free(self, stack: List[TagEntry]) -> Optional[TagEntry]:
        for entry in stack:
            if not entry.valid:
                return entry
        return None

    def _evict(self, entry: TagEntry) -> Eviction:
        eviction = Eviction(
            addr=entry.addr,
            dirty=entry.dirty,
            prefetch_untouched=entry.prefetch_bit,
            state=entry.state,
        )
        self._map.pop(entry.addr, None)
        if self.victim_depth:
            victims = self._victims[self.set_index(entry.addr)]
            if entry.addr in victims:
                victims.remove(entry.addr)
            victims.insert(0, entry.addr)
            del victims[self.victim_depth :]
        entry.reset()
        return eviction
