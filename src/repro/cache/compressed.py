"""Decoupled variable-segment compressed cache (the shared L2).

Following Alameldeen & Wood's ISCA'04 design, each set has
``tags_per_set`` (8) address tags decoupled from a data array of
``data_segments_per_set`` 8-byte segments — 32 segments, i.e. data space
for exactly 4 uncompressed 64-byte lines.  (The HPCA'07 text says "64
8-byte segments" in one sentence and "data space for 4 uncompressed
lines" in another; the two are inconsistent, and we follow the 4-line
data space that both papers' capacity claims — "at most double" — are
built on.)  An uncompressed line uses 8 segments; FPC-compressed lines
use 1-7, so a set can hold between 4 (all uncompressed) and 8 (all
well-compressed) lines.

Invalid tags retain their last address.  These *victim tags* are exactly
what the paper's adaptive prefetcher mines to detect harmful prefetches:
a miss whose address matches a victim tag, in a set that still holds an
unreferenced prefetched line, was plausibly caused by that prefetch.

With ``compressed=False`` the same structure models the paper's
uncompressed-L2-with-adaptive-prefetching configuration: every line
occupies 8 segments (so at most 4 live lines per set) and the 4 spare
tags serve purely as victim tags (Section 5.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.line import MSIState, TagEntry
from repro.cache.lru import touch
from repro.cache.plru import plru_touch, plru_victim
from repro.cache.set_assoc import Eviction
from repro.params import L2Config, SEGMENTS_PER_LINE


class _Set:
    __slots__ = ("valid_stack", "victim_stack", "used_segments")

    def __init__(self, tags: int) -> None:
        self.valid_stack: List[TagEntry] = []  # MRU first
        # Most-recently-evicted first; entries here are invalid tags whose
        # ``addr`` is the victim address.  Each tag keeps the fixed way it
        # was built in (tree-PLRU victim selection needs it).
        self.victim_stack: List[TagEntry] = [TagEntry(way) for way in range(tags)]
        self.used_segments = 0


class CompressedSetCache:
    """The shared L2: banked, inclusive, optionally compressed.

    With ``replacement="plru"`` the eviction loop picks the tree-PLRU
    victim among the set's *valid* tags instead of the recency-stack
    tail; recency stacks, victim-tag recycling order (oldest victim tag
    claimed first) and every other structure are maintained identically.
    """

    __slots__ = (
        "config",
        "n_sets",
        "tags_per_set",
        "total_segments",
        "compressed",
        "_sets",
        "_map",
        "_valid_count",
        "_plru",
    )

    def __init__(self, config: L2Config) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.tags_per_set = config.tags_per_set
        self.total_segments = config.data_segments_per_set
        self.compressed = config.compressed
        self._sets = [_Set(config.tags_per_set) for _ in range(self.n_sets)]
        self._map: Dict[int, TagEntry] = {}
        self._valid_count = 0
        # Packed tree direction bits per set; aliased in place by the
        # fast engine.  None in LRU mode.
        self._plru: Optional[List[int]] = (
            [0] * self.n_sets if config.replacement == "plru" else None
        )

    # -- geometry ----------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.n_sets

    def bank_of(self, line_addr: int) -> int:
        """Banks are interleaved on the least-significant line-address bits."""
        return line_addr % self.config.n_banks

    # -- lookups -----------------------------------------------------------

    def probe(self, line_addr: int) -> Optional[TagEntry]:
        entry = self._map.get(line_addr)
        if entry is not None and entry.valid:
            return entry
        return None

    def touch(self, line_addr: int) -> None:
        entry = self._map.get(line_addr)
        if entry is None or not entry.valid:
            raise KeyError(f"line {line_addr:#x} not resident")
        touch(self._sets[line_addr % self.n_sets].valid_stack, entry)
        if self._plru is not None:
            si = line_addr % self.n_sets
            self._plru[si] = plru_touch(self._plru[si], entry.way, self.tags_per_set)

    def touch_entry(self, entry: TagEntry) -> None:
        """Promote an already-probed entry to MRU without re-probing."""
        stack = self._sets[entry.addr % self.n_sets].valid_stack
        if stack[0] is not entry:
            stack.remove(entry)
            stack.insert(0, entry)
        if self._plru is not None:
            si = entry.addr % self.n_sets
            self._plru[si] = plru_touch(self._plru[si], entry.way, self.tags_per_set)

    def stack_depth(self, line_addr: int) -> int:
        """0-based LRU stack position of a resident line (0 = MRU)."""
        cset = self._sets[self.set_index(line_addr)]
        for depth, entry in enumerate(cset.valid_stack):
            if entry.addr == line_addr:
                return depth
        raise KeyError(f"line {line_addr:#x} not resident")

    def victim_match(self, line_addr: int) -> bool:
        """Search the set's invalid tags (in stack order) for this address."""
        for entry in self._sets[self.set_index(line_addr)].victim_stack:
            if entry.addr == line_addr:
                return True
        return False

    def set_has_prefetched_line(self, line_addr: int) -> bool:
        for entry in self._sets[self.set_index(line_addr)].valid_stack:
            if entry.prefetch_bit:
                return True
        return False

    def free_victim_tags(self, line_addr: int) -> int:
        """How many victim tags the set currently has (8 - live lines)."""
        return len(self._sets[self.set_index(line_addr)].victim_stack)

    # -- modification ------------------------------------------------------

    def insert(
        self,
        line_addr: int,
        segments: int,
        *,
        dirty: bool = False,
        prefetch: bool = False,
        fill_time: float = 0.0,
        sharers: int = 0,
        owner: int = -1,
        state: int = MSIState.SHARED,
    ) -> List[Eviction]:
        """Insert a line, evicting as many LRU lines as segment space and
        tag availability require.  Returns the (possibly several) evictions.
        """
        resident = self._map.get(line_addr)
        if resident is not None and resident.valid:
            raise ValueError(f"line {line_addr:#x} already resident")
        if not self.compressed:
            segments = SEGMENTS_PER_LINE
        if not 1 <= segments <= SEGMENTS_PER_LINE:
            raise ValueError(f"segment count out of range: {segments}")

        cset = self._sets[line_addr % self.n_sets]
        plru = self._plru
        evictions: List[Eviction] = []
        while cset.used_segments + segments > self.total_segments or not cset.victim_stack:
            if plru is None:
                evictions.append(self._evict_lru(cset))
            else:
                evictions.append(self._evict_plru(cset, line_addr % self.n_sets))

        # Claim the *oldest* victim tag so fresher victim addresses survive.
        entry = cset.victim_stack.pop()
        entry.addr = line_addr
        entry.valid = True
        entry.state = state
        entry.dirty = dirty
        entry.prefetch_bit = prefetch
        entry.segments = segments
        entry.fill_time = fill_time
        entry.sharers = sharers
        entry.owner = owner
        cset.valid_stack.insert(0, entry)
        cset.used_segments += segments
        self._map[line_addr] = entry
        self._valid_count += 1
        if plru is not None:
            si = line_addr % self.n_sets
            plru[si] = plru_touch(plru[si], entry.way, self.tags_per_set)
        return evictions

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        entry = self._map.get(line_addr)
        if entry is None or not entry.valid:
            return None
        cset = self._sets[self.set_index(line_addr)]
        cset.valid_stack.remove(entry)
        return self._retire(cset, entry)

    def resize(self, line_addr: int, new_segments: int) -> List[Eviction]:
        """Re-pack a resident line after its contents change size.

        Growing may force evictions of *other* lines (never the line
        itself); shrinking just releases segments.
        """
        entry = self._map.get(line_addr)
        if entry is None or not entry.valid:
            raise KeyError(f"line {line_addr:#x} not resident")
        if not self.compressed:
            return []
        if not 1 <= new_segments <= SEGMENTS_PER_LINE:
            raise ValueError(f"segment count out of range: {new_segments}")
        cset = self._sets[self.set_index(line_addr)]
        evictions: List[Eviction] = []
        delta = new_segments - entry.segments
        while delta > 0 and cset.used_segments + delta > self.total_segments:
            if self._plru is None:
                victim = self._lru_other(cset, entry)
            else:
                victim = self._plru_other(cset, entry, self.set_index(line_addr))
            if victim is None:  # only this line left; cannot overflow (<=8 segs)
                break
            cset.valid_stack.remove(victim)
            evictions.append(self._retire(cset, victim))
        cset.used_segments += delta
        entry.segments = new_segments
        return evictions

    # -- accounting --------------------------------------------------------

    def resident_lines(self) -> int:
        """Live line count — the effective-cache-size numerator (Table 3)."""
        return self._valid_count

    @property
    def uncompressed_capacity_lines(self) -> int:
        return self.n_sets * self.config.uncompressed_assoc

    def used_segments_total(self) -> int:
        return sum(s.used_segments for s in self._sets)

    def check_invariants(self) -> List[tuple]:
        """Verify the decoupled-cache structural invariants.

        Returns ``(invariant, message, context)`` tuples (empty list =
        healthy).  Checked: the per-set segment budget (never more than
        ``data_segments_per_set`` segments packed), ``used_segments``
        bookkeeping vs. the resident lines, tag conservation (valid +
        victim tags == ``tags_per_set``), segment-count ranges (exactly 8
        when uncompressed), set-index placement, ``_map`` and
        ``_valid_count`` agreement, and duplicate tags.  Used by
        :mod:`repro.obs.audit`.
        """
        problems: List[tuple] = []
        total_valid = 0
        valid_addrs = set()
        for index, cset in enumerate(self._sets):
            if len(cset.valid_stack) + len(cset.victim_stack) != self.tags_per_set:
                problems.append((
                    "l2.tag_conservation",
                    "valid + victim tags != tags_per_set",
                    {"set": index, "valid": len(cset.valid_stack),
                     "victims": len(cset.victim_stack), "tags": self.tags_per_set},
                ))
            segments = 0
            for entry in cset.valid_stack:
                if not entry.valid:
                    problems.append((
                        "l2.invalid_in_valid_stack",
                        "invalid tag on the valid stack",
                        {"set": index, "addr": entry.addr},
                    ))
                if not 1 <= entry.segments <= SEGMENTS_PER_LINE:
                    problems.append((
                        "l2.segment_range",
                        "line segment count out of [1, 8]",
                        {"set": index, "addr": entry.addr, "segments": entry.segments},
                    ))
                if not self.compressed and entry.segments != SEGMENTS_PER_LINE:
                    problems.append((
                        "l2.uncompressed_segments",
                        "compressed-size line stored in an uncompressed cache",
                        {"set": index, "addr": entry.addr, "segments": entry.segments},
                    ))
                if entry.addr % self.n_sets != index:
                    problems.append((
                        "l2.set_index",
                        "line resides in the wrong set",
                        {"set": index, "addr": entry.addr},
                    ))
                if entry.addr in valid_addrs:
                    problems.append((
                        "l2.duplicate_tag",
                        "address resident under two tags",
                        {"set": index, "addr": entry.addr},
                    ))
                if self._map.get(entry.addr) is not entry:
                    problems.append((
                        "l2.map_stack_disagree",
                        "valid tag not reachable through _map",
                        {"set": index, "addr": entry.addr},
                    ))
                valid_addrs.add(entry.addr)
                segments += entry.segments
            if segments != cset.used_segments:
                problems.append((
                    "l2.used_segments",
                    "used_segments disagrees with the resident lines",
                    {"set": index, "recorded": cset.used_segments, "actual": segments},
                ))
            if cset.used_segments > self.total_segments:
                problems.append((
                    "l2.segment_budget",
                    "set packs more segments than its data space holds",
                    {"set": index, "used": cset.used_segments, "budget": self.total_segments},
                ))
            for entry in cset.victim_stack:
                if entry.valid:
                    problems.append((
                        "l2.valid_victim_tag",
                        "valid tag on the victim stack",
                        {"set": index, "addr": entry.addr},
                    ))
            total_valid += len(cset.valid_stack)
        if total_valid != self._valid_count:
            problems.append((
                "l2.valid_count",
                "_valid_count disagrees with the stacks",
                {"counted": total_valid, "recorded": self._valid_count},
            ))
        if len(self._map) != len(valid_addrs) or set(self._map) != valid_addrs:
            problems.append((
                "l2.map_size",
                "_map keys disagree with the resident lines",
                {"map": len(self._map), "resident": len(valid_addrs)},
            ))
        for index, cset in enumerate(self._sets):
            ways = sorted(
                e.way for e in cset.valid_stack + cset.victim_stack
            )
            if ways != list(range(self.tags_per_set)):
                problems.append((
                    "l2.way_partition",
                    "set's tags do not cover ways 0..tags_per_set-1 exactly once",
                    {"set": index, "ways": ways},
                ))
        if self._plru is not None:
            limit = 1 << (self.tags_per_set - 1)
            for index, bits in enumerate(self._plru):
                if not 0 <= bits < limit:
                    problems.append((
                        "l2.plru_bits",
                        "tree bits outside the tags_per_set-1 bit range",
                        {"set": index, "bits": bits, "tags": self.tags_per_set},
                    ))
        return problems

    # -- internals ----------------------------------------------------------

    def _evict_lru(self, cset: _Set) -> Eviction:
        if not cset.valid_stack:
            raise RuntimeError("eviction requested from an empty set")
        entry = cset.valid_stack.pop()
        return self._retire(cset, entry)

    def _evict_plru(self, cset: _Set, si: int) -> Eviction:
        """Evict the tree-PLRU victim among the set's valid tags."""
        if not cset.valid_stack:
            raise RuntimeError("eviction requested from an empty set")
        mask = 0
        for e in cset.valid_stack:
            mask |= 1 << e.way
        way = plru_victim(self._plru[si], self.tags_per_set, mask)
        for entry in cset.valid_stack:
            if entry.way == way:
                cset.valid_stack.remove(entry)
                return self._retire(cset, entry)
        raise RuntimeError("plru victim way not on the valid stack")

    def _plru_other(self, cset: _Set, keep: TagEntry, si: int) -> Optional[TagEntry]:
        """Tree-PLRU victim among the valid tags, excluding ``keep``."""
        mask = 0
        for e in cset.valid_stack:
            if e is not keep:
                mask |= 1 << e.way
        if not mask:
            return None
        way = plru_victim(self._plru[si], self.tags_per_set, mask)
        for entry in cset.valid_stack:
            if entry.way == way:
                return entry
        return None

    def _retire(self, cset: _Set, entry: TagEntry) -> Eviction:
        eviction = Eviction(
            addr=entry.addr,
            dirty=entry.dirty,
            prefetch_untouched=entry.prefetch_bit,
            state=entry.state,
            sharers=entry.sharers,
            owner=entry.owner,
            segments=entry.segments,
        )
        cset.used_segments -= entry.segments
        self._map.pop(entry.addr, None)
        self._valid_count -= 1
        entry.reset()  # retains addr: becomes a victim tag
        cset.victim_stack.insert(0, entry)
        return eviction

    @staticmethod
    def _lru_other(cset: _Set, keep: TagEntry) -> Optional[TagEntry]:
        for entry in reversed(cset.valid_stack):
            if entry is not keep:
                return entry
        return None
