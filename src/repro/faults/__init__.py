"""Deterministic fault injection (see :mod:`repro.faults.inject`)."""

from repro.faults.inject import (
    ENV_VAR,
    KINDS,
    Clause,
    FaultHit,
    TransientFault,
    active,
    parse_plan,
    reset,
    should,
)

__all__ = [
    "ENV_VAR",
    "KINDS",
    "Clause",
    "FaultHit",
    "TransientFault",
    "active",
    "parse_plan",
    "reset",
    "should",
]
