"""Deterministic fault injection for the sweep-execution stack.

Production sweeps die in ways unit tests never exercise: a worker is
OOM-killed mid-point, a point hangs on a pathological input, the disk
cache returns a half-written JSON file.  This module makes those
failures *injectable and deterministic* so every recovery path in
:mod:`repro.core.runner` and :mod:`repro.core.diskcache` is exercised by
tests and by the CI chaos job — not just reasoned about.

Faults are described by a plan in the ``REPRO_FAULTS`` environment
variable (inherited by worker processes), a semicolon-separated list of
clauses::

    REPRO_FAULTS="kill@2;transient@0,5;hang(2.5)@7;corrupt@every:3;slowio(0.01)@p:0.5:42"

Clause grammar (whitespace-insensitive)::

    clause   := kind [ '(' arg ')' ] '@' selector (',' selector)* [ 'x' times ]
    selector := N          fire at occurrence/point-index N (0-based)
              | N '-' M    fire for every index in [N, M]
              | 'every:' K fire when index % K == 0
              | 'p:' P ':' SEED
                           fire pseudo-randomly with probability P,
                           derived from a stable hash of
                           (SEED, kind, index) — deterministic across
                           runs and processes
              | '*'        fire always

The registered fault kinds and their injection sites:

=============== ================================================= =========
kind            site                                              arg
=============== ================================================= =========
``kill``        worker body (``runner._run_one``): ``os._exit``   exit code
``hang``        worker body: ``time.sleep`` (pair with            seconds
                ``REPRO_POINT_TIMEOUT``)                          (def 3600)
``transient``   worker body: raises :class:`TransientFault`       —
                (retryable; the runner retries it)
``corrupt``     ``DiskCache.put``: mangles the entry on disk      —
``slowio``      ``DiskCache.get``/``put``: sleeps before I/O      seconds
``snapkill``    ``SnapshotManager.save``: ``os._exit`` right      exit code
                after the selected phase snapshot is durable      (def 137)
``snapcorrupt`` ``snapshot.write_snapshot``: mangles the payload  —
                on disk (checksum catches it on restore)
``diskfull``    ``snapshot.write_snapshot``: fails the store      —
                with ``ENOSPC`` (the run must continue)
=============== ================================================= =========

Selection semantics: sites that know their point index (the worker-body
sites) match selectors against that index — ``snapkill`` matches against
the snapshot's *phase* number instead — and, by default, fire only on
the point's *first* attempt — so an injected transient fault is healed
by one retry.  A clause's ``x<times>`` suffix widens that to the first
``times`` attempts (``transient@0x99`` keeps failing through retry
exhaustion).  Sites with no natural index (the disk-cache sites) match
against a per-process, per-kind occurrence counter.

With ``REPRO_FAULTS`` unset, :func:`should` is a single dict lookup —
the machinery adds nothing to a clean run.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

ENV_VAR = "REPRO_FAULTS"

#: Every fault kind with an injection site wired into the codebase.
KINDS = (
    "kill", "hang", "transient", "corrupt", "slowio",
    "snapkill", "snapcorrupt", "diskfull",
)


class TransientFault(RuntimeError):
    """An injected failure the runner is expected to retry away."""


@dataclass(frozen=True)
class FaultHit:
    """One fault firing: which kind, and the clause's optional argument."""

    kind: str
    arg: Optional[float] = None


@dataclass
class Clause:
    """One parsed ``kind(arg)@selectors x times`` clause."""

    kind: str
    arg: Optional[float] = None
    selectors: List[Tuple] = field(default_factory=list)
    times: int = 1

    def matches(self, value: int) -> bool:
        for sel in self.selectors:
            tag = sel[0]
            if tag == "at" and value == sel[1]:
                return True
            if tag == "range" and sel[1] <= value <= sel[2]:
                return True
            if tag == "every" and value % sel[1] == 0:
                return True
            if tag == "always":
                return True
            if tag == "prob" and _stable_unit(sel[2], self.kind, value) < sel[1]:
                return True
        return False


def _stable_unit(seed: int, kind: str, value: int) -> float:
    """A deterministic pseudo-random float in [0, 1) from (seed, kind,
    value) — stable across processes, platforms and Python versions
    (unlike ``hash()``)."""
    digest = hashlib.sha256(f"{seed}:{kind}:{value}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _parse_selector(text: str, kind: str) -> Tuple:
    text = text.strip()
    if text == "*":
        return ("always",)
    if text.startswith("every:"):
        step = int(text[len("every:"):])
        if step <= 0:
            raise ValueError(f"every:{step} needs a positive step")
        return ("every", step)
    if text.startswith("p:"):
        parts = text[2:].split(":")
        if len(parts) != 2:
            raise ValueError(f"probabilistic selector {text!r} must be p:<prob>:<seed>")
        prob = float(parts[0])
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"probability {prob} outside [0, 1]")
        return ("prob", prob, int(parts[1]))
    if "-" in text:
        lo, hi = text.split("-", 1)
        return ("range", int(lo), int(hi))
    return ("at", int(text))


def parse_plan(spec: str) -> Dict[str, List[Clause]]:
    """Parse a ``REPRO_FAULTS`` value into clauses grouped by kind.

    Raises :class:`ValueError` with a readable message on any malformed
    clause (the CLI surfaces it as a one-line error, exit code 2).
    """
    plan: Dict[str, List[Clause]] = {}
    for raw in spec.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        try:
            head, _, tail = raw.partition("@")
            if not _ or not tail:
                raise ValueError("missing '@<selector>'")
            head = head.strip()
            arg: Optional[float] = None
            if head.endswith(")") and "(" in head:
                head, arg_text = head[:-1].split("(", 1)
                arg = float(arg_text)
            kind = head.strip()
            if kind not in KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; choose from {', '.join(KINDS)}"
                )
            times = 1
            if "x" in tail:
                tail, times_text = tail.rsplit("x", 1)
                times = int(times_text)
                if times <= 0:
                    raise ValueError(f"x{times} must fire at least once")
            selectors = [_parse_selector(s, kind) for s in tail.split(",") if s.strip()]
            if not selectors:
                raise ValueError("no selectors")
        except ValueError as exc:
            raise ValueError(f"{ENV_VAR}: bad clause {raw!r}: {exc}") from None
        plan.setdefault(kind, []).append(
            Clause(kind=kind, arg=arg, selectors=selectors, times=times)
        )
    return plan


# Parsed-plan cache keyed by the raw spec string (workers inherit the
# env, so each process parses at most once per distinct value), plus the
# per-kind occurrence counters used by sites with no point index.
_PARSED: Dict[str, Dict[str, List[Clause]]] = {}
_COUNTERS: Dict[str, int] = {}


def active() -> bool:
    """Is a fault plan installed?"""
    return bool(os.environ.get(ENV_VAR))


def reset() -> None:
    """Drop parsed plans and occurrence counters (test isolation)."""
    _PARSED.clear()
    _COUNTERS.clear()


def should(
    kind: str,
    *,
    index: Optional[int] = None,
    attempt: int = 0,
    token: Optional[str] = None,
) -> Optional[FaultHit]:
    """Consult the plan: does fault ``kind`` fire at this site?

    ``index`` is the point index for sites that have one; otherwise a
    per-process occurrence counter is used.  ``attempt`` gates repeat
    firings (see the ``x<times>`` clause suffix).  ``token`` is accepted
    for site context (e.g. a cache key) but does not affect selection —
    selection must stay deterministic under retry and reordering.
    """
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    plan = _PARSED.get(spec)
    if plan is None:
        plan = _PARSED[spec] = parse_plan(spec)
    clauses = plan.get(kind)
    value = index
    if value is None:
        value = _COUNTERS.get(kind, 0)
        _COUNTERS[kind] = value + 1
    if not clauses:
        return None
    for clause in clauses:
        if attempt < clause.times and clause.matches(value):
            return FaultHit(kind=kind, arg=clause.arg)
    return None
